//! A small dependency-graph stage executor.
//!
//! The pipeline is a DAG of *stages* (build the Twitter dataset, run the
//! pilot monitor, cluster the BTC ledger, ...). Stages that do not
//! depend on each other run concurrently on a pool of scoped worker
//! threads; each stage records its wall time and an item count into
//! [`StageTimings`].
//!
//! Results never depend on the thread count: every stage is a pure
//! function of its dependencies' outputs, and the scheduler only decides
//! *when* a stage runs, not *what* it sees. The end-to-end determinism
//! test (`tests/determinism.rs`) pins this down.
//!
//! # Supervision
//!
//! By default a panicking stage poisons the run and the payload is
//! re-raised on the caller (strict mode). Under a recovering
//! [`SupervisionPolicy`] ([`StageGraph::supervise`]) the worker instead
//! retries the stage in place — re-probing any bound store first, so a
//! crash-and-retry resumes from the last persisted upstream outputs —
//! and, once attempts are exhausted, *quarantines* it: the stage's
//! declared [`fallback`](StageGraph::fallback) output is substituted,
//! every transitive dependent is marked tainted, and the run completes
//! with a [`GraphHealth`] timeline instead of aborting. Stages without
//! a fallback still poison the run when exhausted.

use crate::supervisor::{GraphHealth, StageHealth, StageStatus, SupervisionPolicy};
use gt_obs::MetricsRegistry;
use gt_store::{digest, Digest, KeyBuilder, RunStore, StoreDecode, StoreEncode};
use serde::Serialize;
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

type BoxedAny = Box<dyn Any + Send + Sync>;
type StageFn<'env> = Box<dyn FnMut(&StageResults) -> (BoxedAny, u64) + Send + 'env>;
type FallbackFn<'env> = Box<dyn FnOnce(&StageResults) -> (BoxedAny, u64) + Send + 'env>;
type EncodeFn = Box<dyn Fn(&BoxedAny, u64) -> Vec<u8> + Send + Sync>;
type DecodeFn = Box<dyn Fn(&[u8]) -> Option<(BoxedAny, u64)> + Send + Sync>;

/// Type-erased (encode, decode) pair for one cacheable stage's
/// `(items, payload)` record. Decode failures surface as `None` and
/// decay to a recompute — never an error.
struct StageCodec {
    encode: EncodeFn,
    decode: DecodeFn,
}

/// A [`RunStore`] plus the run's base fingerprint, bound to a graph via
/// [`StageGraph::bind_store`].
struct StoreBinding {
    store: Arc<RunStore>,
    base: Digest,
}

/// Wall time and item count for one completed stage.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageTiming {
    pub name: String,
    /// Wall-clock milliseconds the stage body took.
    pub wall_ms: f64,
    /// Stage-defined unit count (domains built, transactions clustered,
    /// payments isolated, ...); 0 when the stage reports none.
    pub items: u64,
}

/// Per-run execution telemetry, embedded in
/// [`PaperRun`](crate::pipeline::PaperRun) — deliberately *not* in
/// [`PaperReport`](crate::report::PaperReport), which must stay
/// byte-identical across thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StageTimings {
    /// Worker threads the run used.
    pub threads: usize,
    /// Wall-clock milliseconds for the whole graph.
    pub total_ms: f64,
    /// One entry per stage, in registration order.
    pub stages: Vec<StageTiming>,
}

impl StageTimings {
    /// Timing entry by stage name, if present.
    pub fn stage(&self, name: &str) -> Option<&StageTiming> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// Typed handle to a stage's future output.
pub struct StageId<T> {
    index: usize,
    _marker: PhantomData<fn() -> T>,
}

// Derived impls would bound `T`; the handle is always copyable.
impl<T> Clone for StageId<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for StageId<T> {}

impl<T> StageId<T> {
    /// The untyped index, usable in a dependency list.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// Read access to completed dependencies, handed to each stage body.
pub struct StageResults<'a> {
    slots: &'a [OnceLock<BoxedAny>],
}

impl StageResults<'_> {
    /// The output of a completed dependency stage.
    ///
    /// # Panics
    /// If `id` was not declared as a dependency of the calling stage (the
    /// scheduler only guarantees declared dependencies have completed).
    pub fn get<T: Send + Sync + 'static>(&self, id: StageId<T>) -> &T {
        self.slots[id.index]
            .get()
            .expect("stage read a result it did not declare as a dependency")
            .downcast_ref::<T>()
            .expect("stage output type mismatch")
    }
}

struct Stage<'env> {
    name: String,
    deps: Vec<usize>,
    run: Mutex<Option<StageFn<'env>>>,
    /// Degraded substitute output used when the stage is quarantined
    /// under a recovering policy; without one the stage poisons the run
    /// once its attempts are exhausted.
    fallback: Mutex<Option<FallbackFn<'env>>>,
    /// Present for stages registered through `add_cached_stage*`;
    /// ignored unless a store is bound.
    codec: Option<StageCodec>,
    /// Extra stage-local key material (e.g. the intervention lags) that
    /// the stage body reads but that is not part of the run-wide base
    /// fingerprint or any dependency output.
    salt: Vec<u8>,
}

/// The stage graph under construction.
#[derive(Default)]
pub struct StageGraph<'env> {
    stages: Vec<Stage<'env>>,
    store: Option<StoreBinding>,
    policy: SupervisionPolicy,
}

impl<'env> StageGraph<'env> {
    pub fn new() -> Self {
        StageGraph {
            stages: Vec::new(),
            store: None,
            policy: SupervisionPolicy::default(),
        }
    }

    /// Attach a stage-result store. `base` must fingerprint everything
    /// run-global that stage outputs depend on (world config, fault
    /// plan, retry policy, ...) — and deliberately *not* the thread
    /// count, so runs at different parallelism share entries.
    pub fn bind_store(&mut self, store: Arc<RunStore>, base: Digest) {
        self.store = Some(StoreBinding { store, base });
    }

    /// Set the supervision policy for the run. The default is
    /// [`SupervisionPolicy::strict`]: no retries, no fallbacks, the
    /// first stage panic poisons the run.
    pub fn supervise(&mut self, policy: SupervisionPolicy) {
        self.policy = policy;
    }

    /// Register a stage. `deps` are indices of previously registered
    /// stages ([`StageId::index`]); the body receives read access to
    /// their outputs and returns its own.
    pub fn add_stage<T, F>(&mut self, name: &str, deps: &[usize], f: F) -> StageId<T>
    where
        T: Send + Sync + 'static,
        F: FnMut(&StageResults) -> T + Send + 'env,
    {
        let mut f = f;
        self.add_stage_with_items(name, deps, move |r| (f(r), 0))
    }

    /// [`StageGraph::add_stage`] for stages that also report how many
    /// items they processed.
    pub fn add_stage_with_items<T, F>(&mut self, name: &str, deps: &[usize], f: F) -> StageId<T>
    where
        T: Send + Sync + 'static,
        F: FnMut(&StageResults) -> (T, u64) + Send + 'env,
    {
        self.push_stage(name, deps, f, None, Vec::new())
    }

    /// [`StageGraph::add_stage`] for a stage whose output can be cached
    /// in a bound [`RunStore`]. `salt` is stage-local key material: any
    /// parameter the body reads that is neither in the run's base
    /// fingerprint nor in a dependency's output (pass `&[]` when there
    /// is none). Without a bound store this is exactly `add_stage`.
    pub fn add_cached_stage<T, F>(
        &mut self,
        name: &str,
        salt: &[u8],
        deps: &[usize],
        f: F,
    ) -> StageId<T>
    where
        T: StoreEncode + StoreDecode + Send + Sync + 'static,
        F: FnMut(&StageResults) -> T + Send + 'env,
    {
        let mut f = f;
        self.add_cached_stage_with_items(name, salt, deps, move |r| (f(r), 0))
    }

    /// [`StageGraph::add_cached_stage`] for stages that also report an
    /// item count (persisted alongside the payload, so a cache hit
    /// restores it too).
    pub fn add_cached_stage_with_items<T, F>(
        &mut self,
        name: &str,
        salt: &[u8],
        deps: &[usize],
        f: F,
    ) -> StageId<T>
    where
        T: StoreEncode + StoreDecode + Send + Sync + 'static,
        F: FnMut(&StageResults) -> (T, u64) + Send + 'env,
    {
        let codec = StageCodec {
            encode: Box::new(|any, items| {
                let value = any
                    .downcast_ref::<T>()
                    .expect("stage output type mismatch in store codec");
                gt_store::encode_to_vec(&(items, value))
            }),
            decode: Box::new(|bytes| {
                let (items, value): (u64, T) = gt_store::decode_from_slice(bytes).ok()?;
                Some((Box::new(value) as BoxedAny, items))
            }),
        };
        self.push_stage(name, deps, f, Some(codec), salt.to_vec())
    }

    /// Declare a quarantine fallback for a registered stage: a degraded
    /// substitute (empty, identity, or partial output) served in the
    /// stage's place when a recovering policy exhausts its attempts.
    /// The fallback sees the same completed dependencies the real body
    /// would. Never invoked in strict mode or while retries remain.
    pub fn fallback<T, F>(&mut self, id: StageId<T>, f: F)
    where
        T: Send + Sync + 'static,
        F: FnOnce(&StageResults) -> T + Send + 'env,
    {
        self.stages[id.index()].fallback =
            Mutex::new(Some(Box::new(move |r| (Box::new(f(r)) as BoxedAny, 0))));
    }

    fn push_stage<T, F>(
        &mut self,
        name: &str,
        deps: &[usize],
        f: F,
        codec: Option<StageCodec>,
        salt: Vec<u8>,
    ) -> StageId<T>
    where
        T: Send + Sync + 'static,
        F: FnMut(&StageResults) -> (T, u64) + Send + 'env,
    {
        let index = self.stages.len();
        for &d in deps {
            assert!(d < index, "stage {name:?} depends on a later stage");
        }
        let mut f = f;
        self.stages.push(Stage {
            name: name.to_string(),
            deps: deps.to_vec(),
            run: Mutex::new(Some(Box::new(move |r| {
                let (value, items) = f(r);
                (Box::new(value) as BoxedAny, items)
            }))),
            fallback: Mutex::new(None),
            codec,
            salt,
        });
        StageId {
            index,
            _marker: PhantomData,
        }
    }

    /// Execute the graph on `threads` workers (0 = available
    /// parallelism) and return every stage output plus timings.
    pub fn run(self, threads: usize) -> StageOutputs {
        self.run_observed(threads, &MetricsRegistry::disabled())
    }

    /// [`StageGraph::run`] reporting into a telemetry registry: each
    /// stage body runs inside a wall-clock span named after the stage,
    /// and its item count lands on the `(stage, "executor", "items")`
    /// counter — recorded even when zero, so the metrics block covers
    /// every stage deterministically. Supervision events additionally
    /// record `(stage, "supervisor", retry|recovered|quarantined)`
    /// counters — only when they fire, so a clean run's metrics block
    /// is byte-identical with or without supervision.
    pub fn run_observed(self, threads: usize, obs: &MetricsRegistry) -> StageOutputs {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let started = Instant::now();
        let n = self.stages.len();

        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree: Vec<usize> = vec![0; n];
        for (i, stage) in self.stages.iter().enumerate() {
            indegree[i] = stage.deps.len();
            for &d in &stage.deps {
                dependents[d].push(i);
            }
        }
        let ready: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();

        let slots: Vec<OnceLock<BoxedAny>> = (0..n).map(|_| OnceLock::new()).collect();
        let timings: Vec<OnceLock<StageTiming>> = (0..n).map(|_| OnceLock::new()).collect();
        // Content digests of cached stage payloads, set as each stage
        // completes (from the cached record on a hit, from the freshly
        // encoded payload on a miss) — dependents fold them into their
        // own keys. Mutexes, not OnceLocks: a quarantined stage must
        // *overwrite* any digest a failed attempt already recorded with
        // the digest of its fallback payload, otherwise dependents would
        // persist degraded outputs under the keys of the real data.
        let digests: Vec<Mutex<Option<Digest>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let records: Vec<OnceLock<StageRecord>> = (0..n).map(|_| OnceLock::new()).collect();
        let sched = Mutex::new(Sched {
            indegree,
            ready,
            remaining: n,
        });
        let wake = Condvar::new();
        let poison: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let ctx = WorkerCtx {
            stages: &self.stages,
            dependents: &dependents,
            slots: &slots,
            timings: &timings,
            digests: &digests,
            records: &records,
            store: self.store.as_ref(),
            sched: &sched,
            wake: &wake,
            poison: &poison,
            obs,
            policy: self.policy,
        };

        if threads <= 1 || n <= 1 {
            run_worker(&ctx);
        } else {
            crossbeam::thread::scope(|scope| {
                for _ in 0..threads.min(n) {
                    scope.spawn(|_| run_worker(&ctx));
                }
            })
            .expect("executor worker crashed outside a stage body");
        }

        // A panicking stage poisons the run (workers drain instead of
        // deadlocking on the condvar); re-raise it on the caller.
        if let Some(payload) = poison.into_inner().unwrap() {
            resume_unwind(payload);
        }

        let health = fold_health(
            &self.stages,
            records
                .into_iter()
                .map(|cell| {
                    cell.into_inner()
                        .expect("stage never ran (dependency cycle?)")
                })
                .collect(),
            self.policy,
        );

        StageOutputs {
            slots: slots.into_iter().map(|cell| cell.into_inner()).collect(),
            timings: StageTimings {
                threads,
                total_ms: started.elapsed().as_secs_f64() * 1_000.0,
                stages: timings
                    .into_iter()
                    .map(|cell| {
                        cell.into_inner()
                            .expect("stage never ran (dependency cycle?)")
                    })
                    .collect(),
            },
            health,
        }
    }
}

struct Sched {
    indegree: Vec<usize>,
    ready: VecDeque<usize>,
    remaining: usize,
}

/// Terminal supervision record for one stage, written exactly once by
/// the worker that ran it.
struct StageRecord {
    attempts: u32,
    status: StageStatus,
    error: Option<String>,
    cache_write_failed: bool,
}

/// Everything a worker needs, bundled so the loop and its helpers stay
/// readable.
struct WorkerCtx<'a, 'env> {
    stages: &'a [Stage<'env>],
    dependents: &'a [Vec<usize>],
    slots: &'a [OnceLock<BoxedAny>],
    timings: &'a [OnceLock<StageTiming>],
    digests: &'a [Mutex<Option<Digest>>],
    records: &'a [OnceLock<StageRecord>],
    store: Option<&'a StoreBinding>,
    sched: &'a Mutex<Sched>,
    wake: &'a Condvar,
    poison: &'a Mutex<Option<Box<dyn Any + Send>>>,
    obs: &'a MetricsRegistry,
    policy: SupervisionPolicy,
}

impl WorkerCtx<'_, '_> {
    /// First panic wins; poison the run and wake every blocked worker
    /// so the scope can unwind cleanly.
    fn poison_run(&self, payload: Box<dyn Any + Send>) {
        {
            let mut p = self.poison.lock().unwrap();
            if p.is_none() {
                *p = Some(payload);
            }
        }
        let mut s = self.sched.lock().unwrap();
        s.remaining = 0;
        s.ready.clear();
        drop(s);
        self.wake.notify_all();
    }
}

/// The cache key for one stage, or `None` when any dependency has no
/// recorded digest (it was registered without a codec), which makes the
/// stage itself uncacheable.
fn stage_key(
    binding: &StoreBinding,
    stage: &Stage<'_>,
    digests: &[Mutex<Option<Digest>>],
) -> Option<Digest> {
    let mut kb = KeyBuilder::new("stage");
    kb.push_digest(&binding.base);
    kb.push_str(&stage.name);
    kb.push_bytes(&stage.salt);
    for &d in &stage.deps {
        let dep = (*digests[d].lock().unwrap())?;
        kb.push_digest(&dep);
    }
    Some(kb.finish())
}

/// Render a panic payload as a one-line message for the health report.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One attempt at a stage: probe the store (every retry re-probes, so a
/// crash-and-retry resumes from whatever upstream persists survived),
/// run the body on a miss, persist the encoding. Runs inside the
/// worker's `catch_unwind` — a panic anywhere here (the store's
/// simulated-crash hook included) is one failed attempt.
fn attempt_stage(
    ctx: &WorkerCtx<'_, '_>,
    index: usize,
    body: &mut StageFn<'_>,
    results: &StageResults<'_>,
    write_failed: &AtomicBool,
) -> (BoxedAny, u64) {
    let stage = &ctx.stages[index];
    let cache = ctx.store.and_then(|binding| {
        stage.codec.as_ref().and_then(|codec| {
            stage_key(binding, stage, ctx.digests).map(|key| (binding, codec, key))
        })
    });
    let Some((binding, codec, key)) = cache else {
        return body(results);
    };
    if let Some(payload) = binding.store.load_stage(&binding.base, &stage.name, &key) {
        if let Some((value, items)) = (codec.decode)(&payload) {
            ctx.obs.counter_add(&stage.name, "store", "cache_hit", 1);
            *ctx.digests[index].lock().unwrap() = Some(digest(&payload));
            return (value, items);
        }
    }
    let (value, items) = body(results);
    let payload = (codec.encode)(&value, items);
    *ctx.digests[index].lock().unwrap() = Some(digest(&payload));
    ctx.obs.counter_add(&stage.name, "store", "cache_miss", 1);
    if binding
        .store
        .store_stage(&binding.base, &stage.name, &key, &payload)
        .is_err()
    {
        // A failed write never fails the run; the stage output is in
        // hand and the entry will be recomputed next time. It is still
        // reported: the run will not resume warm, and the operator
        // should hear about the full/read-only disk now.
        ctx.obs.counter_add(&stage.name, "store", "write_error", 1);
        write_failed.store(true, Ordering::Relaxed);
    }
    (value, items)
}

fn run_worker(ctx: &WorkerCtx<'_, '_>) {
    loop {
        let next = {
            let mut s = ctx.sched.lock().unwrap();
            loop {
                if s.remaining == 0 {
                    return;
                }
                if let Some(i) = s.ready.pop_front() {
                    break i;
                }
                s = ctx.wake.wait(s).unwrap();
            }
        };

        let stage = &ctx.stages[next];
        let mut body = stage
            .run
            .lock()
            .unwrap()
            .take()
            .expect("stage scheduled twice");
        let results = StageResults { slots: ctx.slots };
        let start = Instant::now();
        let span = ctx.obs.span(&stage.name, "stage");
        let max_attempts = if ctx.policy.strict {
            1
        } else {
            ctx.policy.max_attempts
        };
        let write_failed = AtomicBool::new(false);
        let mut attempts = 0u32;
        let mut last_error: Option<String> = None;
        let mut outcome: Option<(BoxedAny, u64)> = None;
        let mut last_payload: Option<Box<dyn Any + Send>> = None;

        while attempts < max_attempts {
            attempts += 1;
            // The store probe, the stage body, and the persist all run
            // inside the same catch_unwind: a panic in any of them must
            // poison or retry rather than deadlock the other workers on
            // the condvar.
            match catch_unwind(AssertUnwindSafe(|| {
                attempt_stage(ctx, next, &mut body, &results, &write_failed)
            })) {
                Ok(out) => {
                    outcome = Some(out);
                    break;
                }
                Err(payload) => {
                    last_error = Some(panic_message(payload.as_ref()));
                    last_payload = Some(payload);
                    if attempts < max_attempts {
                        ctx.obs.counter_add(&stage.name, "supervisor", "retry", 1);
                    }
                }
            }
        }

        let (status, value, items) = match outcome {
            Some((value, items)) => {
                let status = if attempts > 1 {
                    ctx.obs
                        .counter_add(&stage.name, "supervisor", "recovered", 1);
                    StageStatus::Recovered
                } else {
                    StageStatus::Completed
                };
                (status, value, items)
            }
            None => {
                // Attempts exhausted. Strict mode never reaches here
                // with a fallback consulted: quarantine is a recovering-
                // policy concept, so strict (and fallback-less) stages
                // poison the run exactly as before supervision existed.
                let fb = if ctx.policy.strict {
                    None
                } else {
                    stage.fallback.lock().unwrap().take()
                };
                let Some(fb) = fb else {
                    ctx.poison_run(last_payload.expect("failed stage recorded no panic"));
                    return;
                };
                match catch_unwind(AssertUnwindSafe(|| fb(&results))) {
                    Ok((value, items)) => {
                        ctx.obs
                            .counter_add(&stage.name, "supervisor", "quarantined", 1);
                        // Re-key (or clear) the stage's content digest
                        // from the fallback payload so dependents cache
                        // under addresses that name the degraded data —
                        // and never persist the fallback under the
                        // stage's own key, which names the real
                        // computation.
                        *ctx.digests[next].lock().unwrap() = stage
                            .codec
                            .as_ref()
                            .filter(|_| ctx.store.is_some())
                            .map(|codec| digest(&(codec.encode)(&value, items)));
                        (StageStatus::Quarantined, value, items)
                    }
                    Err(fb_payload) => {
                        // A panicking fallback is a programming error;
                        // nothing left to substitute.
                        ctx.poison_run(fb_payload);
                        return;
                    }
                }
            }
        };
        drop(span);
        let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
        ctx.obs.counter_add(&stage.name, "executor", "items", items);
        let _ = ctx.slots[next].set(value);
        let _ = ctx.timings[next].set(StageTiming {
            name: stage.name.clone(),
            wall_ms,
            items,
        });
        let _ = ctx.records[next].set(StageRecord {
            attempts,
            status,
            error: last_error,
            cache_write_failed: write_failed.load(Ordering::Relaxed),
        });

        let mut s = ctx.sched.lock().unwrap();
        s.remaining -= 1;
        for &d in &ctx.dependents[next] {
            s.indegree[d] -= 1;
            if s.indegree[d] == 0 {
                s.ready.push_back(d);
            }
        }
        drop(s);
        ctx.wake.notify_all();
    }
}

/// Fold per-stage records into a [`GraphHealth`], computing the taint
/// closure: a stage is tainted when any dependency is quarantined or
/// itself tainted. One forward pass suffices because dependencies
/// always have lower indices than their dependents.
fn fold_health(
    stages: &[Stage<'_>],
    records: Vec<StageRecord>,
    policy: SupervisionPolicy,
) -> GraphHealth {
    let n = stages.len();
    let mut degraded = vec![false; n];
    let mut health = GraphHealth {
        supervised: !policy.strict,
        ..GraphHealth::default()
    };
    for (i, record) in records.into_iter().enumerate() {
        let quarantined = record.status == StageStatus::Quarantined;
        let tainted = !quarantined && stages[i].deps.iter().any(|&d| degraded[d]);
        degraded[i] = quarantined || tainted;
        health.attempts += u64::from(record.attempts);
        health.retries += u64::from(record.attempts - 1);
        if quarantined {
            health.quarantined.push(stages[i].name.clone());
        }
        if tainted {
            health.tainted.push(stages[i].name.clone());
        }
        health.stages.push(StageHealth {
            name: stages[i].name.clone(),
            attempts: record.attempts,
            status: record.status,
            error: record.error,
            tainted,
            cache_write_failed: record.cache_write_failed,
        });
    }
    health
}

/// Every stage's output after a completed run.
pub struct StageOutputs {
    slots: Vec<Option<BoxedAny>>,
    pub timings: StageTimings,
    /// Supervision outcome for the run: attempts, retries, quarantined
    /// and tainted stages, and the per-stage recovery timeline. On a
    /// strict clean run this is all-Completed with zero retries.
    pub health: GraphHealth,
}

impl StageOutputs {
    /// Move a stage's output out.
    ///
    /// # Panics
    /// If called twice for the same stage.
    pub fn take<T: Send + Sync + 'static>(&mut self, id: StageId<T>) -> T {
        *self.slots[id.index()]
            .take()
            .expect("stage output already taken")
            .downcast::<T>()
            .expect("stage output type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    #[test]
    fn diamond_graph_runs_in_dependency_order() {
        for threads in [1, 2, 4] {
            let mut g = StageGraph::new();
            let a = g.add_stage("a", &[], |_| 2u64);
            let b = g.add_stage("b", &[a.index()], move |r| r.get(a) * 10);
            let c = g.add_stage("c", &[a.index()], move |r| r.get(a) + 5);
            let d = g.add_stage("d", &[b.index(), c.index()], move |r| r.get(b) + r.get(c));
            let mut out = g.run(threads);
            assert_eq!(out.take(d), 27, "{threads} threads");
            assert_eq!(out.timings.threads, threads);
            assert_eq!(out.timings.stages.len(), 4);
            assert_eq!(out.timings.stages[0].name, "a");
        }
    }

    #[test]
    fn independent_stages_all_run() {
        let counter = AtomicUsize::new(0);
        let mut g = StageGraph::new();
        for i in 0..16 {
            g.add_stage::<usize, _>(&format!("s{i}"), &[], |_| {
                counter.fetch_add(1, Ordering::SeqCst)
            });
        }
        let out = g.run(4);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        assert_eq!(out.timings.stages.len(), 16);
    }

    #[test]
    fn items_are_recorded() {
        let mut g = StageGraph::new();
        g.add_stage_with_items::<Vec<u32>, _>("count", &[], |_| (vec![1, 2, 3], 3));
        let out = g.run(1);
        let t = out.timings.stage("count").unwrap();
        assert_eq!(t.items, 3);
        assert!(out.timings.stage("missing").is_none());
    }

    #[test]
    fn heterogeneous_output_types() {
        let mut g = StageGraph::new();
        let s = g.add_stage("string", &[], |_| "hello".to_string());
        let v = g.add_stage("vec", &[s.index()], move |r| vec![r.get(s).len()]);
        let mut out = g.run(2);
        assert_eq!(out.take(v), vec![5]);
        assert_eq!(out.take(s), "hello");
    }

    #[test]
    #[should_panic(expected = "depends on a later stage")]
    fn forward_dependencies_are_rejected() {
        let mut g = StageGraph::new();
        g.add_stage::<u8, _>("bad", &[3], |_| 0);
    }

    #[test]
    fn diamond_dependency_sees_both_parents() {
        // b and c race on 2+ threads; d must still observe both, and the
        // sum pins that neither parent was skipped or reordered past d.
        for threads in [1, 2, 4, 8] {
            let mut g = StageGraph::new();
            let a = g.add_stage("a", &[], |_| vec![1u64, 2, 3]);
            let b = g.add_stage("b", &[a.index()], move |r| r.get(a).iter().sum::<u64>());
            let c = g.add_stage("c", &[a.index()], move |r| r.get(a).iter().product::<u64>());
            let d = g.add_stage("d", &[b.index(), c.index()], move |r| r.get(b) + r.get(c));
            let mut out = g.run(threads);
            assert_eq!(out.take(d), 12, "{threads} threads");
        }
    }

    #[test]
    fn timings_collected_for_every_stage() {
        for threads in [1, 4] {
            let mut g = StageGraph::new();
            let names = ["alpha", "beta", "gamma", "delta", "epsilon"];
            let mut prev: Option<usize> = None;
            for name in names {
                let deps: Vec<usize> = prev.into_iter().collect();
                let id = g.add_stage::<u8, _>(name, &deps, |_| 0);
                prev = Some(id.index());
            }
            let out = g.run(threads);
            assert_eq!(out.timings.stages.len(), names.len());
            for name in names {
                let t = out
                    .timings
                    .stage(name)
                    .unwrap_or_else(|| panic!("no timing for stage {name:?} at {threads} threads"));
                assert!(t.wall_ms >= 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn stage_panic_propagates_single_thread() {
        let mut g = StageGraph::new();
        g.add_stage::<u8, _>("bad", &[], |_| panic!("boom"));
        g.run(1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn stage_panic_propagates_multi_thread() {
        // Regression: a panicking stage used to leave `remaining`
        // undecremented, deadlocking the other workers on the condvar.
        let mut g = StageGraph::new();
        for i in 0..8 {
            g.add_stage::<u8, _>(&format!("ok{i}"), &[], |_| 0);
        }
        g.add_stage::<u8, _>("bad", &[], |_| panic!("boom"));
        for i in 8..16 {
            g.add_stage::<u8, _>(&format!("ok{i}"), &[], |_| 0);
        }
        g.run(4);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let mut g = StageGraph::new();
        let a = g.add_stage("only", &[], |_| 1u8);
        let mut out = g.run(0);
        assert_eq!(out.take(a), 1);
        assert!(out.timings.threads >= 1);
    }

    #[test]
    fn clean_run_health_is_all_completed() {
        let mut g = StageGraph::new();
        let a = g.add_stage("a", &[], |_| 1u8);
        g.add_stage("b", &[a.index()], move |r| r.get(a) + 1);
        let out = g.run(1);
        assert!(!out.health.supervised, "default policy is strict");
        assert!(out.health.is_clean());
        assert_eq!(out.health.attempts, 2);
        assert_eq!(out.health.retries, 0);
        assert!(out
            .health
            .stages
            .iter()
            .all(|s| s.status == StageStatus::Completed && s.error.is_none()));
    }

    #[test]
    fn retry_recovers_a_flaky_stage() {
        for threads in [1, 4] {
            let failures = AtomicU32::new(0);
            let mut g = StageGraph::new();
            let s = g.add_stage("flaky", &[], |_| {
                if failures.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient wobble");
                }
                41u64
            });
            let t = g.add_stage("after", &[s.index()], move |r| r.get(s) + 1);
            g.supervise(SupervisionPolicy::recover(3));
            let mut out = g.run(threads);
            assert_eq!(out.take(t), 42, "{threads} threads");
            assert!(out.health.supervised);
            let flaky = &out.health.stages[0];
            assert_eq!(flaky.attempts, 3);
            assert_eq!(flaky.status, StageStatus::Recovered);
            assert_eq!(flaky.error.as_deref(), Some("transient wobble"));
            assert!(!flaky.tainted);
            assert_eq!(out.health.retries, 2);
            assert!(out.health.quarantined.is_empty());
            failures.store(0, Ordering::SeqCst);
        }
    }

    #[test]
    fn quarantine_substitutes_fallback_and_taints_dependents() {
        for threads in [1, 4] {
            let mut g = StageGraph::new();
            let a = g.add_stage("a", &[], |_| 7u64);
            let b = g.add_stage::<u64, _>("b", &[a.index()], |_| panic!("b is broken"));
            let c = g.add_stage("c", &[a.index()], move |r| r.get(a) + 1);
            let d = g.add_stage("d", &[b.index(), c.index()], move |r| r.get(b) + r.get(c));
            g.fallback(b, move |r| r.get(a) + 100);
            g.supervise(SupervisionPolicy::recover(2));
            let mut out = g.run(threads);
            assert_eq!(out.take(d), 107 + 8, "{threads} threads");
            assert_eq!(out.health.quarantined, vec!["b"]);
            assert_eq!(
                out.health.tainted,
                vec!["d"],
                "c is untouched, d is fed by b"
            );
            let b_health = &out.health.stages[1];
            assert_eq!(b_health.status, StageStatus::Quarantined);
            assert_eq!(b_health.attempts, 2);
            assert_eq!(b_health.error.as_deref(), Some("b is broken"));
            assert!(out.health.stages[3].tainted);
            assert!(!out.health.stages[2].tainted);
            assert_eq!(out.health.retries, 1);
        }
    }

    #[test]
    #[should_panic(expected = "no fallback here")]
    fn exhausted_stage_without_fallback_still_poisons() {
        let mut g = StageGraph::new();
        g.add_stage::<u8, _>("doomed", &[], |_| panic!("no fallback here"));
        g.supervise(SupervisionPolicy::recover(3));
        g.run(1);
    }

    #[test]
    #[should_panic(expected = "strict means strict")]
    fn strict_mode_ignores_declared_fallbacks() {
        let mut g = StageGraph::new();
        let s = g.add_stage::<u8, _>("bad", &[], |_| panic!("strict means strict"));
        g.fallback(s, |_| 0u8);
        // Default policy: no supervise() call.
        g.run(1);
    }

    #[test]
    fn taint_propagates_transitively_through_chains() {
        let mut g = StageGraph::new();
        let a = g.add_stage::<u8, _>("a", &[], |_| panic!("root failure"));
        let b = g.add_stage("b", &[a.index()], move |r| r.get(a) + 1);
        let c = g.add_stage("c", &[b.index()], move |r| r.get(b) + 1);
        let lone = g.add_stage("lone", &[], |_| 9u8);
        g.fallback(a, |_| 0u8);
        g.supervise(SupervisionPolicy::recover(1));
        let mut out = g.run(2);
        assert_eq!(out.take(c), 2);
        assert_eq!(out.take(lone), 9);
        assert_eq!(out.health.quarantined, vec!["a"]);
        assert_eq!(out.health.tainted, vec!["b", "c"]);
        assert!(!out.health.stages[3].tainted, "independent stage untouched");
    }
}
