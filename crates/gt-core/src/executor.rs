//! A small dependency-graph stage executor.
//!
//! The pipeline is a DAG of *stages* (build the Twitter dataset, run the
//! pilot monitor, cluster the BTC ledger, ...). Stages that do not
//! depend on each other run concurrently on a pool of scoped worker
//! threads; each stage records its wall time and an item count into
//! [`StageTimings`].
//!
//! Results never depend on the thread count: every stage is a pure
//! function of its dependencies' outputs, and the scheduler only decides
//! *when* a stage runs, not *what* it sees. The end-to-end determinism
//! test (`tests/determinism.rs`) pins this down.

use gt_obs::MetricsRegistry;
use gt_store::{digest, Digest, KeyBuilder, RunStore, StoreDecode, StoreEncode};
use serde::Serialize;
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

type BoxedAny = Box<dyn Any + Send + Sync>;
type StageFn<'env> = Box<dyn FnOnce(&StageResults) -> (BoxedAny, u64) + Send + 'env>;
type EncodeFn = Box<dyn Fn(&BoxedAny, u64) -> Vec<u8> + Send + Sync>;
type DecodeFn = Box<dyn Fn(&[u8]) -> Option<(BoxedAny, u64)> + Send + Sync>;

/// Type-erased (encode, decode) pair for one cacheable stage's
/// `(items, payload)` record. Decode failures surface as `None` and
/// decay to a recompute — never an error.
struct StageCodec {
    encode: EncodeFn,
    decode: DecodeFn,
}

/// A [`RunStore`] plus the run's base fingerprint, bound to a graph via
/// [`StageGraph::bind_store`].
struct StoreBinding {
    store: Arc<RunStore>,
    base: Digest,
}

/// Wall time and item count for one completed stage.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageTiming {
    pub name: String,
    /// Wall-clock milliseconds the stage body took.
    pub wall_ms: f64,
    /// Stage-defined unit count (domains built, transactions clustered,
    /// payments isolated, ...); 0 when the stage reports none.
    pub items: u64,
}

/// Per-run execution telemetry, embedded in
/// [`PaperRun`](crate::pipeline::PaperRun) — deliberately *not* in
/// [`PaperReport`](crate::report::PaperReport), which must stay
/// byte-identical across thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StageTimings {
    /// Worker threads the run used.
    pub threads: usize,
    /// Wall-clock milliseconds for the whole graph.
    pub total_ms: f64,
    /// One entry per stage, in registration order.
    pub stages: Vec<StageTiming>,
}

impl StageTimings {
    /// Timing entry by stage name, if present.
    pub fn stage(&self, name: &str) -> Option<&StageTiming> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// Typed handle to a stage's future output.
pub struct StageId<T> {
    index: usize,
    _marker: PhantomData<fn() -> T>,
}

// Derived impls would bound `T`; the handle is always copyable.
impl<T> Clone for StageId<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for StageId<T> {}

impl<T> StageId<T> {
    /// The untyped index, usable in a dependency list.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// Read access to completed dependencies, handed to each stage body.
pub struct StageResults<'a> {
    slots: &'a [OnceLock<BoxedAny>],
}

impl StageResults<'_> {
    /// The output of a completed dependency stage.
    ///
    /// # Panics
    /// If `id` was not declared as a dependency of the calling stage (the
    /// scheduler only guarantees declared dependencies have completed).
    pub fn get<T: Send + Sync + 'static>(&self, id: StageId<T>) -> &T {
        self.slots[id.index]
            .get()
            .expect("stage read a result it did not declare as a dependency")
            .downcast_ref::<T>()
            .expect("stage output type mismatch")
    }
}

struct Stage<'env> {
    name: String,
    deps: Vec<usize>,
    run: Mutex<Option<StageFn<'env>>>,
    /// Present for stages registered through `add_cached_stage*`;
    /// ignored unless a store is bound.
    codec: Option<StageCodec>,
    /// Extra stage-local key material (e.g. the intervention lags) that
    /// the stage body reads but that is not part of the run-wide base
    /// fingerprint or any dependency output.
    salt: Vec<u8>,
}

/// The stage graph under construction.
#[derive(Default)]
pub struct StageGraph<'env> {
    stages: Vec<Stage<'env>>,
    store: Option<StoreBinding>,
}

impl<'env> StageGraph<'env> {
    pub fn new() -> Self {
        StageGraph {
            stages: Vec::new(),
            store: None,
        }
    }

    /// Attach a stage-result store. `base` must fingerprint everything
    /// run-global that stage outputs depend on (world config, fault
    /// plan, retry policy, ...) — and deliberately *not* the thread
    /// count, so runs at different parallelism share entries.
    pub fn bind_store(&mut self, store: Arc<RunStore>, base: Digest) {
        self.store = Some(StoreBinding { store, base });
    }

    /// Register a stage. `deps` are indices of previously registered
    /// stages ([`StageId::index`]); the body receives read access to
    /// their outputs and returns its own.
    pub fn add_stage<T, F>(&mut self, name: &str, deps: &[usize], f: F) -> StageId<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&StageResults) -> T + Send + 'env,
    {
        self.add_stage_with_items(name, deps, move |r| (f(r), 0))
    }

    /// [`StageGraph::add_stage`] for stages that also report how many
    /// items they processed.
    pub fn add_stage_with_items<T, F>(&mut self, name: &str, deps: &[usize], f: F) -> StageId<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&StageResults) -> (T, u64) + Send + 'env,
    {
        self.push_stage(name, deps, f, None, Vec::new())
    }

    /// [`StageGraph::add_stage`] for a stage whose output can be cached
    /// in a bound [`RunStore`]. `salt` is stage-local key material: any
    /// parameter the body reads that is neither in the run's base
    /// fingerprint nor in a dependency's output (pass `&[]` when there
    /// is none). Without a bound store this is exactly `add_stage`.
    pub fn add_cached_stage<T, F>(
        &mut self,
        name: &str,
        salt: &[u8],
        deps: &[usize],
        f: F,
    ) -> StageId<T>
    where
        T: StoreEncode + StoreDecode + Send + Sync + 'static,
        F: FnOnce(&StageResults) -> T + Send + 'env,
    {
        self.add_cached_stage_with_items(name, salt, deps, move |r| (f(r), 0))
    }

    /// [`StageGraph::add_cached_stage`] for stages that also report an
    /// item count (persisted alongside the payload, so a cache hit
    /// restores it too).
    pub fn add_cached_stage_with_items<T, F>(
        &mut self,
        name: &str,
        salt: &[u8],
        deps: &[usize],
        f: F,
    ) -> StageId<T>
    where
        T: StoreEncode + StoreDecode + Send + Sync + 'static,
        F: FnOnce(&StageResults) -> (T, u64) + Send + 'env,
    {
        let codec = StageCodec {
            encode: Box::new(|any, items| {
                let value = any
                    .downcast_ref::<T>()
                    .expect("stage output type mismatch in store codec");
                gt_store::encode_to_vec(&(items, value))
            }),
            decode: Box::new(|bytes| {
                let (items, value): (u64, T) = gt_store::decode_from_slice(bytes).ok()?;
                Some((Box::new(value) as BoxedAny, items))
            }),
        };
        self.push_stage(name, deps, f, Some(codec), salt.to_vec())
    }

    fn push_stage<T, F>(
        &mut self,
        name: &str,
        deps: &[usize],
        f: F,
        codec: Option<StageCodec>,
        salt: Vec<u8>,
    ) -> StageId<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&StageResults) -> (T, u64) + Send + 'env,
    {
        let index = self.stages.len();
        for &d in deps {
            assert!(d < index, "stage {name:?} depends on a later stage");
        }
        self.stages.push(Stage {
            name: name.to_string(),
            deps: deps.to_vec(),
            run: Mutex::new(Some(Box::new(move |r| {
                let (value, items) = f(r);
                (Box::new(value) as BoxedAny, items)
            }))),
            codec,
            salt,
        });
        StageId {
            index,
            _marker: PhantomData,
        }
    }

    /// Execute the graph on `threads` workers (0 = available
    /// parallelism) and return every stage output plus timings.
    pub fn run(self, threads: usize) -> StageOutputs {
        self.run_observed(threads, &MetricsRegistry::disabled())
    }

    /// [`StageGraph::run`] reporting into a telemetry registry: each
    /// stage body runs inside a wall-clock span named after the stage,
    /// and its item count lands on the `(stage, "executor", "items")`
    /// counter — recorded even when zero, so the metrics block covers
    /// every stage deterministically.
    pub fn run_observed(self, threads: usize, obs: &MetricsRegistry) -> StageOutputs {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let started = Instant::now();
        let n = self.stages.len();

        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree: Vec<usize> = vec![0; n];
        for (i, stage) in self.stages.iter().enumerate() {
            indegree[i] = stage.deps.len();
            for &d in &stage.deps {
                dependents[d].push(i);
            }
        }
        let ready: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();

        let slots: Vec<OnceLock<BoxedAny>> = (0..n).map(|_| OnceLock::new()).collect();
        let timings: Vec<OnceLock<StageTiming>> = (0..n).map(|_| OnceLock::new()).collect();
        // Content digests of cached stage payloads, set as each stage
        // completes (from the cached record on a hit, from the freshly
        // encoded payload on a miss) — dependents fold them into their
        // own keys.
        let digests: Vec<OnceLock<Digest>> = (0..n).map(|_| OnceLock::new()).collect();
        let sched = Mutex::new(Sched {
            indegree,
            ready,
            remaining: n,
        });
        let wake = Condvar::new();
        let poison: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let stages = &self.stages;
        let store = self.store.as_ref();

        if threads <= 1 || n <= 1 {
            run_worker(
                stages,
                &dependents,
                &slots,
                &timings,
                &digests,
                store,
                &sched,
                &wake,
                &poison,
                obs,
            );
        } else {
            crossbeam::thread::scope(|scope| {
                for _ in 0..threads.min(n) {
                    scope.spawn(|_| {
                        run_worker(
                            stages,
                            &dependents,
                            &slots,
                            &timings,
                            &digests,
                            store,
                            &sched,
                            &wake,
                            &poison,
                            obs,
                        )
                    });
                }
            })
            .expect("executor worker crashed outside a stage body");
        }

        // A panicking stage poisons the run (workers drain instead of
        // deadlocking on the condvar); re-raise it on the caller.
        if let Some(payload) = poison.into_inner().unwrap() {
            resume_unwind(payload);
        }

        StageOutputs {
            slots: slots.into_iter().map(|cell| cell.into_inner()).collect(),
            timings: StageTimings {
                threads,
                total_ms: started.elapsed().as_secs_f64() * 1_000.0,
                stages: timings
                    .into_iter()
                    .map(|cell| {
                        cell.into_inner()
                            .expect("stage never ran (dependency cycle?)")
                    })
                    .collect(),
            },
        }
    }
}

struct Sched {
    indegree: Vec<usize>,
    ready: VecDeque<usize>,
    remaining: usize,
}

/// The cache key for one stage, or `None` when any dependency has no
/// recorded digest (it was registered without a codec), which makes the
/// stage itself uncacheable.
fn stage_key(
    binding: &StoreBinding,
    stage: &Stage<'_>,
    digests: &[OnceLock<Digest>],
) -> Option<Digest> {
    let mut kb = KeyBuilder::new("stage");
    kb.push_digest(&binding.base);
    kb.push_str(&stage.name);
    kb.push_bytes(&stage.salt);
    for &d in &stage.deps {
        kb.push_digest(digests[d].get()?);
    }
    Some(kb.finish())
}

#[allow(clippy::too_many_arguments)] // internal worker-loop plumbing
fn run_worker(
    stages: &[Stage<'_>],
    dependents: &[Vec<usize>],
    slots: &[OnceLock<BoxedAny>],
    timings: &[OnceLock<StageTiming>],
    digests: &[OnceLock<Digest>],
    store: Option<&StoreBinding>,
    sched: &Mutex<Sched>,
    wake: &Condvar,
    poison: &Mutex<Option<Box<dyn Any + Send>>>,
    obs: &MetricsRegistry,
) {
    loop {
        let next = {
            let mut s = sched.lock().unwrap();
            loop {
                if s.remaining == 0 {
                    return;
                }
                if let Some(i) = s.ready.pop_front() {
                    break i;
                }
                s = wake.wait(s).unwrap();
            }
        };

        let stage = &stages[next];
        let body = stage
            .run
            .lock()
            .unwrap()
            .take()
            .expect("stage scheduled twice");
        let results = StageResults { slots };
        let start = Instant::now();
        let span = obs.span(&stage.name, "stage");
        // The store probe, the stage body, and the persist all run
        // inside the same catch_unwind: a panic in any of them (the
        // store's simulated-crash hook included) must poison the run
        // rather than deadlock the other workers on the condvar.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let cache = store.and_then(|binding| {
                stage.codec.as_ref().and_then(|codec| {
                    stage_key(binding, stage, digests).map(|key| (binding, codec, key))
                })
            });
            let Some((binding, codec, key)) = cache else {
                return body(&results);
            };
            if let Some(payload) = binding.store.load_stage(&binding.base, &stage.name, &key) {
                if let Some((value, items)) = (codec.decode)(&payload) {
                    obs.counter_add(&stage.name, "store", "cache_hit", 1);
                    let _ = digests[next].set(digest(&payload));
                    return (value, items);
                }
            }
            let (value, items) = body(&results);
            let payload = (codec.encode)(&value, items);
            let _ = digests[next].set(digest(&payload));
            obs.counter_add(&stage.name, "store", "cache_miss", 1);
            if binding
                .store
                .store_stage(&binding.base, &stage.name, &key, &payload)
                .is_err()
            {
                // A failed write never fails the run; the stage output
                // is in hand and the entry will be recomputed next time.
                obs.counter_add(&stage.name, "store", "write_error", 1);
            }
            (value, items)
        }));
        drop(span);
        let (value, items) = match outcome {
            Ok(output) => output,
            Err(payload) => {
                // First panic wins; poison the run and wake every
                // blocked worker so the scope can unwind cleanly.
                {
                    let mut p = poison.lock().unwrap();
                    if p.is_none() {
                        *p = Some(payload);
                    }
                }
                let mut s = sched.lock().unwrap();
                s.remaining = 0;
                s.ready.clear();
                drop(s);
                wake.notify_all();
                return;
            }
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
        obs.counter_add(&stages[next].name, "executor", "items", items);
        let _ = slots[next].set(value);
        let _ = timings[next].set(StageTiming {
            name: stages[next].name.clone(),
            wall_ms,
            items,
        });

        let mut s = sched.lock().unwrap();
        s.remaining -= 1;
        for &d in &dependents[next] {
            s.indegree[d] -= 1;
            if s.indegree[d] == 0 {
                s.ready.push_back(d);
            }
        }
        wake.notify_all();
    }
}

/// Every stage's output after a completed run.
pub struct StageOutputs {
    slots: Vec<Option<BoxedAny>>,
    pub timings: StageTimings,
}

impl StageOutputs {
    /// Move a stage's output out.
    ///
    /// # Panics
    /// If called twice for the same stage.
    pub fn take<T: Send + Sync + 'static>(&mut self, id: StageId<T>) -> T {
        *self.slots[id.index()]
            .take()
            .expect("stage output already taken")
            .downcast::<T>()
            .expect("stage output type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn diamond_graph_runs_in_dependency_order() {
        for threads in [1, 2, 4] {
            let mut g = StageGraph::new();
            let a = g.add_stage("a", &[], |_| 2u64);
            let b = g.add_stage("b", &[a.index()], move |r| r.get(a) * 10);
            let c = g.add_stage("c", &[a.index()], move |r| r.get(a) + 5);
            let d = g.add_stage("d", &[b.index(), c.index()], move |r| r.get(b) + r.get(c));
            let mut out = g.run(threads);
            assert_eq!(out.take(d), 27, "{threads} threads");
            assert_eq!(out.timings.threads, threads);
            assert_eq!(out.timings.stages.len(), 4);
            assert_eq!(out.timings.stages[0].name, "a");
        }
    }

    #[test]
    fn independent_stages_all_run() {
        let counter = AtomicUsize::new(0);
        let mut g = StageGraph::new();
        for i in 0..16 {
            g.add_stage::<usize, _>(&format!("s{i}"), &[], |_| {
                counter.fetch_add(1, Ordering::SeqCst)
            });
        }
        let out = g.run(4);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        assert_eq!(out.timings.stages.len(), 16);
    }

    #[test]
    fn items_are_recorded() {
        let mut g = StageGraph::new();
        g.add_stage_with_items::<Vec<u32>, _>("count", &[], |_| (vec![1, 2, 3], 3));
        let out = g.run(1);
        let t = out.timings.stage("count").unwrap();
        assert_eq!(t.items, 3);
        assert!(out.timings.stage("missing").is_none());
    }

    #[test]
    fn heterogeneous_output_types() {
        let mut g = StageGraph::new();
        let s = g.add_stage("string", &[], |_| "hello".to_string());
        let v = g.add_stage("vec", &[s.index()], move |r| vec![r.get(s).len()]);
        let mut out = g.run(2);
        assert_eq!(out.take(v), vec![5]);
        assert_eq!(out.take(s), "hello");
    }

    #[test]
    #[should_panic(expected = "depends on a later stage")]
    fn forward_dependencies_are_rejected() {
        let mut g = StageGraph::new();
        g.add_stage::<u8, _>("bad", &[3], |_| 0);
    }

    #[test]
    fn diamond_dependency_sees_both_parents() {
        // b and c race on 2+ threads; d must still observe both, and the
        // sum pins that neither parent was skipped or reordered past d.
        for threads in [1, 2, 4, 8] {
            let mut g = StageGraph::new();
            let a = g.add_stage("a", &[], |_| vec![1u64, 2, 3]);
            let b = g.add_stage("b", &[a.index()], move |r| r.get(a).iter().sum::<u64>());
            let c = g.add_stage("c", &[a.index()], move |r| r.get(a).iter().product::<u64>());
            let d = g.add_stage("d", &[b.index(), c.index()], move |r| r.get(b) + r.get(c));
            let mut out = g.run(threads);
            assert_eq!(out.take(d), 12, "{threads} threads");
        }
    }

    #[test]
    fn timings_collected_for_every_stage() {
        for threads in [1, 4] {
            let mut g = StageGraph::new();
            let names = ["alpha", "beta", "gamma", "delta", "epsilon"];
            let mut prev: Option<usize> = None;
            for name in names {
                let deps: Vec<usize> = prev.into_iter().collect();
                let id = g.add_stage::<u8, _>(name, &deps, |_| 0);
                prev = Some(id.index());
            }
            let out = g.run(threads);
            assert_eq!(out.timings.stages.len(), names.len());
            for name in names {
                let t = out
                    .timings
                    .stage(name)
                    .unwrap_or_else(|| panic!("no timing for stage {name:?} at {threads} threads"));
                assert!(t.wall_ms >= 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn stage_panic_propagates_single_thread() {
        let mut g = StageGraph::new();
        g.add_stage::<u8, _>("bad", &[], |_| panic!("boom"));
        g.run(1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn stage_panic_propagates_multi_thread() {
        // Regression: a panicking stage used to leave `remaining`
        // undecremented, deadlocking the other workers on the condvar.
        let mut g = StageGraph::new();
        for i in 0..8 {
            g.add_stage::<u8, _>(&format!("ok{i}"), &[], |_| 0);
        }
        g.add_stage::<u8, _>("bad", &[], |_| panic!("boom"));
        for i in 8..16 {
            g.add_stage::<u8, _>(&format!("ok{i}"), &[], |_| 0);
        }
        g.run(4);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let mut g = StageGraph::new();
        let a = g.add_stage("only", &[], |_| 1u8);
        let mut out = g.run(0);
        assert_eq!(out.take(a), 1);
        assert!(out.timings.threads >= 1);
    }
}
