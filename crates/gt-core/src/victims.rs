//! Victim behaviour (Section 5.4): conversions, payment origins, and
//! the whale-shaped payment distribution.

use crate::payments::PaymentAnalysis;
use gt_addr::Address;
use gt_cluster::{Category, ClusterView, TagResolver};
use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Conversion-rate figures.
#[derive(
    Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct Conversions {
    pub unique_senders: usize,
    /// Lure denominator (tweets for Twitter, views for YouTube).
    pub denominator: u64,
    /// unique senders / denominator.
    pub rate: f64,
}

/// Count distinct senders among final victim payments and derive the
/// conversion rate against a denominator.
pub fn conversions(analysis: &PaymentAnalysis, denominator: u64) -> Conversions {
    let mut senders: HashSet<Address> = HashSet::new();
    for p in analysis.victim_payments() {
        senders.extend(p.transfer.senders.iter().copied());
    }
    Conversions {
        unique_senders: senders.len(),
        denominator,
        rate: senders.len() as f64 / denominator.max(1) as f64,
    }
}

/// Payment-origin breakdown.
#[derive(
    Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct PaymentOrigins {
    pub payments: usize,
    pub from_exchange: usize,
    pub exchange_rate: f64,
}

/// Classify the sender of every final victim payment via the tag
/// service (with BTC cluster propagation).
pub fn payment_origins(
    analyses: &[&PaymentAnalysis],
    tags: &TagResolver,
    clustering: &ClusterView,
) -> PaymentOrigins {
    let mut payments = 0usize;
    let mut from_exchange = 0usize;
    for analysis in analyses {
        for p in analysis.victim_payments() {
            payments += 1;
            let is_exchange = p
                .transfer
                .senders
                .iter()
                .any(|&s| tags.category(s, clustering) == Some(Category::Exchange));
            if is_exchange {
                from_exchange += 1;
            }
        }
    }
    PaymentOrigins {
        payments,
        from_exchange,
        exchange_rate: from_exchange as f64 / payments.max(1) as f64,
    }
}

/// The whale distribution: how many top payments carry 50% / 90% of
/// the revenue.
#[derive(
    Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct WhaleDistribution {
    pub payments: usize,
    pub total_usd: f64,
    /// Smallest k such that the top-k payments carry ≥ 50% of value.
    pub top_for_half: usize,
    /// Smallest k such that the top-k payments carry ≥ 90% of value.
    pub top_for_90pct: usize,
    /// Largest single payment.
    pub max_usd: f64,
}

/// Compute the distribution over final victim payments.
pub fn whale_distribution(analysis: &PaymentAnalysis) -> WhaleDistribution {
    let mut values: Vec<f64> = analysis.victim_payments().map(|p| p.usd).collect();
    values.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let total: f64 = values.iter().sum();
    let mut cumulative = 0.0;
    let mut top_for_half = values.len();
    let mut top_for_90 = values.len();
    for (i, v) in values.iter().enumerate() {
        cumulative += v;
        if cumulative >= total * 0.5 && top_for_half == values.len() {
            top_for_half = i + 1;
        }
        if cumulative >= total * 0.9 {
            top_for_90 = i + 1;
            break;
        }
    }
    WhaleDistribution {
        payments: values.len(),
        total_usd: total,
        top_for_half,
        top_for_90pct: top_for_90,
        max_usd: values.first().copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payments::{IsolatedPayment, PaymentAnalysis, PaymentFunnel, RevenueRow};
    use gt_addr::{BtcAddress, Coin};
    use gt_chain::{Amount, Transfer, TxRef};
    use gt_sim::SimTime;

    fn payment(sender: u8, usd: f64, co_occurring: bool, scam: bool) -> IsolatedPayment {
        IsolatedPayment {
            transfer: Transfer {
                tx: TxRef {
                    coin: Coin::Btc,
                    index: sender as u64,
                },
                senders: vec![Address::Btc(BtcAddress::P2pkh([sender; 20]))],
                recipient: Address::Btc(BtcAddress::P2pkh([99; 20])),
                amount: Amount(1),
                time: SimTime(0),
            },
            domain: "d".into(),
            usd,
            co_occurring,
            from_known_scam: scam,
        }
    }

    fn analysis(payments: Vec<IsolatedPayment>) -> PaymentAnalysis {
        PaymentAnalysis {
            payments,
            funnel: PaymentFunnel {
                domains_with_coin: 0,
                domains_paid: 0,
                distinct_addresses: 0,
                payments_any: 0,
                payments_co_occurring_raw: 0,
                consolidations_removed: 0,
                payments_final: 0,
            },
            revenue: RevenueRow::default(),
            degradation: Default::default(),
        }
    }

    #[test]
    fn unique_senders_deduplicate() {
        let a = analysis(vec![
            payment(1, 10.0, true, false),
            payment(1, 20.0, true, false),
            payment(2, 30.0, true, false),
            payment(3, 5.0, false, false), // background: excluded
            payment(4, 5.0, true, true),   // scam sender: excluded
        ]);
        let c = conversions(&a, 1_000);
        assert_eq!(c.unique_senders, 2);
        assert!((c.rate - 0.002).abs() < 1e-12);
    }

    #[test]
    fn whale_distribution_top_heavy() {
        // One $1000 whale among 99 $1 payments: half the value sits in
        // the top payment.
        let mut ps = vec![payment(0, 1_000.0, true, false)];
        for i in 1..100 {
            ps.push(payment(i, 1.0, true, false));
        }
        let d = whale_distribution(&analysis(ps));
        assert_eq!(d.payments, 100);
        assert_eq!(d.top_for_half, 1);
        assert!(d.top_for_90pct < 100);
        assert_eq!(d.max_usd, 1_000.0);
    }

    #[test]
    fn whale_distribution_uniform() {
        let ps: Vec<IsolatedPayment> = (0..10).map(|i| payment(i, 10.0, true, false)).collect();
        let d = whale_distribution(&analysis(ps));
        assert_eq!(d.top_for_half, 5);
        assert_eq!(d.top_for_90pct, 9);
    }

    #[test]
    fn empty_analysis_is_safe() {
        let a = analysis(vec![]);
        let d = whale_distribution(&a);
        assert_eq!(d.payments, 0);
        assert_eq!(d.total_usd, 0.0);
        let c = conversions(&a, 100);
        assert_eq!(c.unique_senders, 0);
    }
}
