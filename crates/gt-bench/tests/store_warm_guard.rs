//! Guard: a fully-warm `--store` run must be at least 5× faster than
//! the cold run that populated it.
//!
//! The warm path replaces every stage body with decode + integrity
//! check of its stored output; if it ever drifts to within 5× of a
//! full recompute, either the codec got slow or stages stopped
//! hitting. The miss/hit counters are asserted too, so a silent
//! cache-key regression fails loudly here instead of showing up as a
//! mysterious timing miss.

use gt_core::Pipeline;
use gt_store::RunStore;
use gt_world::{World, WorldConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROUNDS: usize = 4;
const MIN_SPEEDUP: f64 = 5.0;

fn store_metric(run: &gt_core::PaperRun, metric: &str) -> u64 {
    run.telemetry
        .metrics
        .iter()
        .filter(|m| m.substrate == "store" && m.metric == metric)
        .map(|m| m.value)
        .sum()
}

#[test]
fn warm_store_run_is_5x_faster_than_cold() {
    // Big enough that stage compute dominates fixed costs; the cold
    // run at this scale is ~1 s release / a few s debug.
    let mut config = WorldConfig::scaled(0.1);
    config.seed = 0x0057_A6E5;
    let world = World::generate(config);

    let dir = std::env::temp_dir().join(format!("gt-store-warm-guard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(RunStore::open(&dir).expect("store opens"));

    let cold_started = Instant::now();
    let cold = Pipeline::new(&world)
        .threads(2)
        .store(Some(store.clone()))
        .run();
    let cold_time = cold_started.elapsed();
    assert_eq!(store_metric(&cold, "cache_hit"), 0, "cold run hit?");
    assert!(store_metric(&cold, "cache_miss") > 0);

    // Warm-up pass (page cache), then best-of-N to cancel scheduler
    // noise; the guard compares best-warm against the single cold run,
    // which is the conservative direction.
    let mut warm_time = Duration::MAX;
    for _ in 0..=ROUNDS {
        let started = Instant::now();
        let warm = Pipeline::new(&world)
            .threads(2)
            .store(Some(store.clone()))
            .run();
        warm_time = warm_time.min(started.elapsed());
        assert_eq!(
            store_metric(&warm, "cache_miss"),
            0,
            "a warm identical run must not recompute any stage"
        );
        assert_eq!(
            serde_json::to_string(&warm.report).unwrap(),
            serde_json::to_string(&cold.report).unwrap(),
            "warm report diverged"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    assert!(
        speedup >= MIN_SPEEDUP,
        "warm store run too slow: cold={cold_time:?} warm={warm_time:?} speedup={speedup:.1}x (need {MIN_SPEEDUP}x)"
    );
}
