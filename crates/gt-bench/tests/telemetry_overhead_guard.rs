//! Guard: telemetry-on must stay within 5% of telemetry-off.
//!
//! The criterion bench (`benches/telemetry_overhead.rs`) gives the
//! precise numbers; this test enforces the budget in `cargo test`.
//! Runs are interleaved and compared min-vs-min so scheduler noise
//! cancels; a small absolute slack keeps the guard robust on loaded
//! machines without masking a real regression (at this scale a 5%
//! regression is an order of magnitude above the slack).

use gt_core::Pipeline;
use gt_world::{World, WorldConfig};
use std::time::{Duration, Instant};

const ROUNDS: usize = 4;
const RELATIVE_BUDGET: f64 = 1.05;
const ABSOLUTE_SLACK: Duration = Duration::from_millis(60);

fn timed_run(world: &World, telemetry: bool) -> Duration {
    let started = Instant::now();
    let run = Pipeline::new(world).threads(2).telemetry(telemetry).run();
    assert_eq!(run.telemetry.enabled, telemetry);
    std::hint::black_box(&run.report);
    started.elapsed()
}

#[test]
fn telemetry_overhead_stays_under_budget() {
    // A dedicated small world: the guard wants wall-clock stability,
    // not the bigger shared bench fixture.
    let mut config = WorldConfig::scaled(0.02);
    config.seed = 0x0B5E_17ED;
    let world = World::generate(config);

    // Warm-up pair (page cache, lazy statics), then interleaved rounds.
    timed_run(&world, false);
    timed_run(&world, true);
    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    for _ in 0..ROUNDS {
        off = off.min(timed_run(&world, false));
        on = on.min(timed_run(&world, true));
    }

    let budget = off.mul_f64(RELATIVE_BUDGET) + ABSOLUTE_SLACK;
    assert!(
        on <= budget,
        "telemetry overhead too high: on={on:?} off={off:?} budget={budget:?}"
    );
}
