//! Shared fixtures for the benchmark suite.
//!
//! Every bench works over the same lazily-generated small-scale world
//! so criterion timings measure the *analysis* code, not world
//! generation.

use gt_world::{World, WorldConfig};
use std::sync::OnceLock;

/// Scale used by the bench fixtures (a compromise between realism and
/// criterion iteration counts).
pub const BENCH_SCALE: f64 = 0.05;

/// The shared world.
pub fn bench_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut config = WorldConfig::scaled(BENCH_SCALE);
        config.seed = 0xBE7C;
        World::generate(config)
    })
}

/// A pre-run monitoring report over the main YouTube window.
pub fn bench_monitor_report() -> &'static gt_stream::monitor::MonitorReport {
    static REPORT: OnceLock<gt_stream::monitor::MonitorReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let world = bench_world();
        let monitor = gt_stream::monitor::Monitor::new(
            gt_stream::monitor::MonitorConfig::paper(
                world.config.youtube_start,
                world.config.youtube_end,
            ),
            gt_stream::keywords::search_keyword_set(),
        );
        monitor.run(&world.youtube, &world.web)
    })
}

/// The assembled datasets.
pub fn bench_datasets() -> &'static (
    gt_core::datasets::TwitterDataset,
    gt_core::datasets::YouTubeDataset,
) {
    static DATASETS: OnceLock<(
        gt_core::datasets::TwitterDataset,
        gt_core::datasets::YouTubeDataset,
    )> = OnceLock::new();
    DATASETS.get_or_init(|| {
        let world = bench_world();
        let keywords = gt_stream::keywords::search_keyword_set();
        let twitter = gt_core::datasets::build_twitter_dataset(&world.twitter, &world.scam_db);
        let youtube = gt_core::datasets::build_youtube_dataset(bench_monitor_report(), &keywords);
        (twitter, youtube)
    })
}
