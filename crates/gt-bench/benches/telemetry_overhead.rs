//! Telemetry-layer overhead: metrics collection must be cheap enough
//! to leave on for every run (the acceptance bar is <5%, enforced by
//! the `telemetry_overhead_guard` integration test; this bench gives
//! the detailed criterion numbers).
//!
//! Two configurations over the shared bench world:
//!
//! * `off` — `telemetry(false)`, the registry is a no-op and gated
//!   calls take the pass-through fast path;
//! * `on` — the default: every stage span, executor item counter, and
//!   substrate call sheet is recorded and flushed.

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::bench_world;
use gt_core::Pipeline;
use std::hint::black_box;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let world = bench_world();

    c.bench_function("telemetry_overhead/off", |b| {
        b.iter(|| black_box(Pipeline::new(world).threads(2).telemetry(false).run()))
    });

    c.bench_function("telemetry_overhead/on", |b| {
        b.iter(|| black_box(Pipeline::new(world).threads(2).telemetry(true).run()))
    });
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
