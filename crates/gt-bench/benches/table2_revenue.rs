//! Table 2 — payment isolation and revenue computation.
//!
//! Regenerates both platforms' revenue rows and measures the
//! co-occurrence isolation pass (the heart of Section 5).

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::{bench_datasets, bench_world};
use gt_cluster::{ClusterView, Clustering};
use gt_core::payments::{analyze_twitter, analyze_youtube};
use std::collections::HashSet;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let world = bench_world();
    let (twitter, youtube) = bench_datasets();

    let mut known = HashSet::new();
    for d in &twitter.domains {
        known.extend(d.addresses.iter().copied());
    }
    for d in &youtube.domains {
        known.extend(d.validation.addresses.iter().copied());
    }

    // Print the regenerated Table 2 once.
    {
        let clustering = ClusterView::build(&world.chains.btc);
        let tags = world.tags.resolver(&clustering);
        let tw = analyze_twitter(
            twitter,
            &world.chains,
            &world.prices,
            &tags,
            &clustering,
            &known,
        );
        let yt = analyze_youtube(
            youtube,
            &world.chains,
            &world.prices,
            &tags,
            &clustering,
            &known,
        );
        println!("Table 2 (scale {}):", gt_bench::BENCH_SCALE);
        println!("  Twitter: {:?}", tw.revenue);
        println!("  YouTube: {:?}", yt.revenue);
    }

    c.bench_function("table2/analyze_twitter", |b| {
        b.iter(|| {
            let clustering = ClusterView::build(&world.chains.btc);
            let tags = world.tags.resolver(&clustering);
            black_box(analyze_twitter(
                twitter,
                &world.chains,
                &world.prices,
                &tags,
                &clustering,
                &known,
            ))
        })
    });
    c.bench_function("table2/analyze_youtube", |b| {
        b.iter(|| {
            let clustering = ClusterView::build(&world.chains.btc);
            let tags = world.tags.resolver(&clustering);
            black_box(analyze_youtube(
                youtube,
                &world.chains,
                &world.prices,
                &tags,
                &clustering,
                &known,
            ))
        })
    });
    c.bench_function("table2/clustering_build", |b| {
        b.iter(|| black_box(Clustering::build(&world.chains.btc)))
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
