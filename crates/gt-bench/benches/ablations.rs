//! Ablations of the design choices DESIGN.md calls out:
//!
//! * CoinJoin-aware vs naive multi-input clustering (false merges);
//! * crawler hardening levels (site yield);
//! * co-occurrence window width (payment attribution).

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::{bench_datasets, bench_world};
use gt_cluster::clustering::{Clustering, ClusteringOptions};
use gt_core::payments::analyze_twitter;
use gt_sim::SimTime;
use gt_web::{Crawler, CrawlerConfig, Url};
use std::collections::HashSet;
use std::hint::black_box;

fn ablate_clustering(c: &mut Criterion) {
    let world = bench_world();
    // Report the accuracy difference once.
    let aware = Clustering::build_with(
        &world.chains.btc,
        ClusteringOptions {
            coinjoin_aware: true,
        },
    );
    let naive = Clustering::build_with(
        &world.chains.btc,
        ClusteringOptions {
            coinjoin_aware: false,
        },
    );
    println!(
        "ablation clustering: aware {} clusters ({} CoinJoins skipped) vs naive {} clusters",
        aware.cluster_count(),
        aware.skipped_coinjoins,
        naive.cluster_count()
    );

    c.bench_function("ablation/clustering_coinjoin_aware", |b| {
        b.iter(|| {
            black_box(Clustering::build_with(
                &world.chains.btc,
                ClusteringOptions {
                    coinjoin_aware: true,
                },
            ))
        })
    });
    c.bench_function("ablation/clustering_naive", |b| {
        b.iter(|| {
            black_box(Clustering::build_with(
                &world.chains.btc,
                ClusteringOptions {
                    coinjoin_aware: false,
                },
            ))
        })
    });
}

fn ablate_crawler(c: &mut Criterion) {
    let world = bench_world();
    let urls: Vec<Url> = world
        .truth
        .youtube_domains
        .iter()
        .take(30)
        .map(|d| Url::parse(&format!("https://{}/", d.domain)).unwrap())
        .collect();
    let at = world.config.youtube_start;

    for (name, config) in [
        ("hardened", CrawlerConfig::default()),
        ("naive", CrawlerConfig::naive()),
    ] {
        // Report yield once.
        let crawler = Crawler::new(config);
        let reached = urls
            .iter()
            .filter(|u| crawler.crawl(&world.web, u, at).html().is_some())
            .count();
        println!(
            "ablation crawler/{name}: {reached}/{} sites reached",
            urls.len()
        );
        c.bench_function(&format!("ablation/crawl_30_sites_{name}"), |b| {
            let crawler = Crawler::new(config);
            b.iter(|| {
                black_box(
                    urls.iter()
                        .map(|u| crawler.crawl(&world.web, u, at))
                        .filter(|o| o.html().is_some())
                        .count(),
                )
            })
        });
    }

    // Parallel crawl throughput.
    c.bench_function("ablation/crawl_30_sites_parallel4", |b| {
        let crawler = Crawler::new(CrawlerConfig::default());
        b.iter(|| black_box(crawler.crawl_many(&world.web, &urls, at, 4)))
    });
}

fn ablate_window(c: &mut Criterion) {
    let world = bench_world();
    let (twitter, _) = bench_datasets();
    let known = HashSet::new();

    // Sweep the co-occurrence window by shrinking tweet windows via the
    // dataset (report-only: the attribution counts at different widths).
    for days in [1i64, 3, 7, 14] {
        let mut dataset_narrow = gt_core::datasets::TwitterDataset::default();
        for d in &twitter.domains {
            dataset_narrow
                .domains
                .push(gt_core::datasets::TwitterDomain {
                    domain: d.domain.clone(),
                    tweets: d.tweets.clone(),
                    // Truncate each window by moving the tweet later:
                    // analyze_twitter always adds 7 days, so shift times
                    // forward by (7 - days).
                    tweet_times: d
                        .tweet_times
                        .iter()
                        .map(|&t| t + gt_sim::SimDuration::days(days - 7))
                        .collect(),
                    addresses: d.addresses.clone(),
                });
        }
        dataset_narrow.tweet_count = twitter.tweet_count;
        let clustering = gt_cluster::ClusterView::build(&world.chains.btc);
        let tags = world.tags.resolver(&clustering);
        let analysis = analyze_twitter(
            &dataset_narrow,
            &world.chains,
            &world.prices,
            &tags,
            &clustering,
            &known,
        );
        println!(
            "ablation window {days}d: {} co-occurring payments, ${:.0} revenue",
            analysis.funnel.payments_co_occurring_raw, analysis.revenue.usd_co_occurring
        );
    }

    c.bench_function("ablation/co_occurrence_isolation", |b| {
        b.iter(|| {
            let clustering = gt_cluster::ClusterView::build(&world.chains.btc);
            let tags = world.tags.resolver(&clustering);
            black_box(analyze_twitter(
                twitter,
                &world.chains,
                &world.prices,
                &tags,
                &clustering,
                &known,
            ))
        })
    });
    let _ = SimTime::EPOCH;
}

criterion_group!(benches, ablate_clustering, ablate_crawler, ablate_window);
criterion_main!(benches);
