//! Stage-executor scaling: the full pipeline at 1/2/4/8 worker
//! threads over the shared bench world.
//!
//! On a multi-core machine the independent roots (Twitter dataset,
//! pilot monitor, main monitor, sharded clustering) overlap, so the
//! 4-thread run should approach the critical-path wall time. On a
//! single core the thread counts tie — the run then only checks that
//! parallelism costs nothing.

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::bench_world;
use gt_core::Pipeline;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let world = bench_world();

    // Print one run's per-stage breakdown so the scaling numbers can be
    // read against the critical path.
    {
        let run = Pipeline::new(world).threads(4).run();
        println!(
            "pipeline stages at 4 threads ({:.0} ms total):",
            run.timings.total_ms
        );
        let mut stages = run.timings.stages.clone();
        stages.sort_by(|a, b| b.wall_ms.total_cmp(&a.wall_ms));
        for s in stages.iter().take(8) {
            println!(
                "  {:<22} {:>9.1} ms  ({} items)",
                s.name, s.wall_ms, s.items
            );
        }
    }

    for threads in [1usize, 2, 4, 8] {
        c.bench_function(&format!("pipeline_scaling/{threads}_threads"), |b| {
            b.iter(|| black_box(Pipeline::new(world).threads(threads).run()))
        });
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
