//! Substrate micro-benchmarks: the building blocks every experiment
//! leans on (QR codec, frame scanning, keyword automaton, address
//! validation, Reed–Solomon correction, URL extraction).

use criterion::{criterion_group, criterion_main, Criterion};
use gt_qr::{decode, encode, scan_frame, EcLevel, Frame};
use gt_stream::keywords::search_keyword_set;
use gt_text::{extract_urls, scan_address_candidates};
use std::hint::black_box;

fn bench_qr(c: &mut Criterion) {
    let url = b"https://xrp-double-event.live/claim?src=qr";
    c.bench_function("qr/encode_v5_H", |b| {
        b.iter(|| black_box(encode(url, EcLevel::H).unwrap()))
    });
    let matrix = encode(url, EcLevel::H).unwrap();
    c.bench_function("qr/decode_clean", |b| {
        b.iter(|| black_box(decode(&matrix).unwrap()))
    });
    let mut damaged = matrix.clone();
    let size = damaged.size();
    let mut flipped = 0;
    'outer: for r in 9..size - 9 {
        for col in 9..size - 9 {
            if !damaged.is_function(r, col) && (r + col) % 9 == 0 {
                let v = damaged.get(r, col);
                damaged.set(r, col, !v);
                flipped += 1;
                if flipped >= 12 {
                    break 'outer;
                }
            }
        }
    }
    c.bench_function("qr/decode_with_rs_correction", |b| {
        b.iter(|| black_box(decode(&damaged).unwrap()))
    });

    let mut frame = Frame::blank(320, 240);
    frame.paint_qr(&matrix, 180, 100, 2);
    c.bench_function("qr/scan_frame_320x240_hit", |b| {
        b.iter(|| black_box(scan_frame(&frame)))
    });
    let blank = Frame::blank(320, 240);
    c.bench_function("qr/scan_frame_320x240_miss", |b| {
        b.iter(|| black_box(scan_frame(&blank)))
    });
}

fn bench_text(c: &mut Criterion) {
    let keywords = search_keyword_set();
    let title = "Elon Musk LIVE: 5000 BITCOIN & RIPPLE giveaway — double your crypto!";
    c.bench_function("text/keyword_match_title", |b| {
        b.iter(|| black_box(keywords.search.matches(title)))
    });
    let chat = "hello! participate here: https://xrp-double-event.live/claim and also www.backup-link.net soon";
    c.bench_function("text/extract_urls_chat", |b| {
        b.iter(|| black_box(extract_urls(chat)))
    });
    let html = format!(
        "<html>{} send to 1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa or \
         0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed or \
         rHb9CJAWyB4rj91VRWn96DkukG4bwdtyTh now</html>",
        "filler text ".repeat(50)
    );
    c.bench_function("text/scan_address_candidates_page", |b| {
        b.iter(|| black_box(scan_address_candidates(&html)))
    });
}

fn bench_addr(c: &mut Criterion) {
    c.bench_function("addr/validate_btc_base58check", |b| {
        b.iter(|| black_box(gt_addr::validate_any("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa")))
    });
    c.bench_function("addr/validate_eth_eip55", |b| {
        b.iter(|| {
            black_box(gt_addr::validate_any(
                "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed",
            ))
        })
    });
    c.bench_function("addr/validate_bech32", |b| {
        b.iter(|| {
            black_box(gt_addr::validate_any(
                "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4",
            ))
        })
    });
    c.bench_function("addr/reject_garbage", |b| {
        b.iter(|| black_box(gt_addr::validate_any("1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNb")))
    });
}

criterion_group!(benches, bench_qr, bench_text, bench_addr);
criterion_main!(benches);
