//! Sections 5.4 & 5.5 — conversions, payment origins, whale
//! distribution, recipient clustering, cash-out classification.

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::{bench_datasets, bench_world};
use gt_cluster::ClusterView;
use gt_core::payments::{analyze_twitter, analyze_youtube, PaymentAnalysis};
use gt_core::{scammers, victims};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::OnceLock;

fn analyses() -> &'static (PaymentAnalysis, PaymentAnalysis) {
    static A: OnceLock<(PaymentAnalysis, PaymentAnalysis)> = OnceLock::new();
    A.get_or_init(|| {
        let world = bench_world();
        let (twitter, youtube) = bench_datasets();
        let mut known = HashSet::new();
        for d in &twitter.domains {
            known.extend(d.addresses.iter().copied());
        }
        for d in &youtube.domains {
            known.extend(d.validation.addresses.iter().copied());
        }
        let clustering = ClusterView::build(&world.chains.btc);
        let tags = world.tags.resolver(&clustering);
        (
            analyze_twitter(
                twitter,
                &world.chains,
                &world.prices,
                &tags,
                &clustering,
                &known,
            ),
            analyze_youtube(
                youtube,
                &world.chains,
                &world.prices,
                &tags,
                &clustering,
                &known,
            ),
        )
    })
}

fn bench_sections(c: &mut Criterion) {
    let world = bench_world();
    let (tw, yt) = analyses();

    // Print the section numbers once.
    {
        let clustering = ClusterView::build(&world.chains.btc);
        let conv = victims::conversions(tw, 45_725);
        let whales = victims::whale_distribution(tw);
        let recips = scammers::recipient_stats(&[tw, yt], &clustering);
        println!("S5.4/5.5 (scale {}):", gt_bench::BENCH_SCALE);
        println!("  conversions: {conv:?}");
        println!("  whales: {whales:?}");
        println!("  recipients: {recips:?}");
    }

    c.bench_function("s5.4/conversions", |b| {
        b.iter(|| black_box(victims::conversions(tw, 45_725)))
    });
    c.bench_function("s5.4/whale_distribution", |b| {
        b.iter(|| black_box(victims::whale_distribution(tw)))
    });
    c.bench_function("s5.4/payment_origins", |b| {
        b.iter(|| {
            let clustering = ClusterView::build(&world.chains.btc);
            let tags = world.tags.resolver(&clustering);
            black_box(victims::payment_origins(&[tw, yt], &tags, &clustering))
        })
    });
    c.bench_function("s5.5/recipient_stats", |b| {
        b.iter(|| {
            let clustering = ClusterView::build(&world.chains.btc);
            black_box(scammers::recipient_stats(&[tw, yt], &clustering))
        })
    });
    c.bench_function("s5.5/outgoing_stats", |b| {
        b.iter(|| {
            let clustering = ClusterView::build(&world.chains.btc);
            let tags = world.tags.resolver(&clustering);
            black_box(scammers::outgoing_stats(
                &[tw, yt],
                &world.chains,
                &tags,
                &clustering,
            ))
        })
    });
}

criterion_group!(benches, bench_sections);
criterion_main!(benches);
