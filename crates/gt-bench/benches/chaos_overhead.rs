//! Fault-layer overhead: the clean path must not pay for chaos it
//! doesn't use.
//!
//! Three configurations over the shared bench world:
//!
//! * `clean` — `fault_plan: None`, the pre-fault-layer fast path
//!   (drivers report disabled, no RNG, no schedule lookups);
//! * `quiet_plan` — a plan with zero windows attached, which exercises
//!   the schedule-lookup machinery but injects nothing (the expected
//!   overhead is a no-window BTreeMap miss per gated call, ~zero);
//! * `chaotic` — the default chaos profile, as an upper bound showing
//!   what retries/backoff accounting cost when faults actually fire.

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::bench_world;
use gt_core::Pipeline;
use gt_sim::faults::{ChaosProfile, FaultPlan};
use std::hint::black_box;

fn bench_chaos_overhead(c: &mut Criterion) {
    let world = bench_world();

    c.bench_function("chaos_overhead/clean", |b| {
        b.iter(|| black_box(Pipeline::new(world).threads(2).run()))
    });

    c.bench_function("chaos_overhead/quiet_plan", |b| {
        b.iter(|| {
            black_box(
                Pipeline::new(world)
                    .threads(2)
                    .fault_plan(Some(FaultPlan::quiet(1)))
                    .run(),
            )
        })
    });

    c.bench_function("chaos_overhead/chaotic", |b| {
        b.iter(|| {
            black_box(
                Pipeline::new(world)
                    .threads(2)
                    .chaos(1, &ChaosProfile::default())
                    .run(),
            )
        })
    });
}

criterion_group!(benches, bench_chaos_overhead);
criterion_main!(benches);
