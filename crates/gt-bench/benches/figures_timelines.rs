//! Figures 3 & 4 — weekly lure-volume series, plus Figure 1/2
//! artifact generation (landing-page HTML and livestream QR frames).

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::{bench_datasets, bench_monitor_report, bench_world};
use gt_core::timeline::WeeklySeries;
use gt_qr::{encode, EcLevel, Frame};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let world = bench_world();
    let (twitter, youtube) = bench_datasets();
    let report = bench_monitor_report();

    // Figure 3: weekly scam-tweet volume.
    c.bench_function("figure3/twitter_weekly_series", |b| {
        b.iter(|| {
            black_box(WeeklySeries::build(
                world.config.twitter_start,
                world.config.twitter_end,
                twitter
                    .domains
                    .iter()
                    .flat_map(|d| d.tweet_times.iter().map(|&t| (t, 0u64))),
            ))
        })
    });

    // Figure 4: weekly streams + views.
    let observed: HashMap<_, _> = report.streams.iter().map(|s| (s.stream, s)).collect();
    c.bench_function("figure4/youtube_weekly_series", |b| {
        b.iter(|| {
            black_box(WeeklySeries::build(
                world.config.youtube_start,
                world.config.youtube_end,
                youtube
                    .scam_streams
                    .iter()
                    .filter_map(|sid| observed.get(sid).map(|o| (o.first_seen, o.max_total_views))),
            ))
        })
    });

    // Print the two series once (the figure data).
    let f3 = WeeklySeries::build(
        world.config.twitter_start,
        world.config.twitter_end,
        twitter
            .domains
            .iter()
            .flat_map(|d| d.tweet_times.iter().map(|&t| (t, 0u64))),
    );
    println!(
        "Figure 3 (scale {}): {}",
        gt_bench::BENCH_SCALE,
        f3.sparkline()
    );

    // Figure 1: scam landing-page rendering.
    let domain = &world.truth.twitter_domains[0];
    c.bench_function("figure1/landing_page_html", |b| {
        b.iter(|| {
            black_box(gt_world::sites::landing_html(
                &domain.persona,
                &domain.addresses,
            ))
        })
    });

    // Figure 2: the livestream QR overlay frame.
    c.bench_function("figure2/render_qr_frame", |b| {
        b.iter(|| {
            let matrix = encode(b"https://xrp-2x.live/claim", EcLevel::M).unwrap();
            let mut frame = Frame::blank(320, 240);
            frame.paint_qr(&matrix, 180, 100, 2);
            black_box(frame)
        })
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
