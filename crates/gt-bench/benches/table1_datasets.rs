//! Table 1 — dataset assembly cost for both platforms.
//!
//! Regenerates the Table 1 rows (domains / accounts / artifacts) and
//! measures the two assembly paths: the Twitter domain-index join and
//! the YouTube validate-and-attach pass over a monitoring report.

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::{bench_datasets, bench_monitor_report, bench_world};
use gt_core::datasets::{build_twitter_dataset, build_youtube_dataset, Table1};
use gt_stream::keywords::search_keyword_set;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let world = bench_world();
    let report = bench_monitor_report();
    let keywords = search_keyword_set();

    // Print the regenerated table once, so the bench doubles as the
    // Table 1 harness.
    let (twitter, youtube) = bench_datasets();
    let table1 = Table1::new(twitter, youtube);
    println!("Table 1 (scale {}): {table1:?}", gt_bench::BENCH_SCALE);

    c.bench_function("table1/build_twitter_dataset", |b| {
        b.iter(|| black_box(build_twitter_dataset(&world.twitter, &world.scam_db)))
    });
    c.bench_function("table1/build_youtube_dataset", |b| {
        b.iter(|| black_box(build_youtube_dataset(report, &keywords)))
    });
    c.bench_function("table1/domain_index_lookup", |b| {
        let domain = &twitter.domains[0].domain;
        b.iter(|| black_box(world.twitter.tweets_with_domain(domain)))
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
