//! Appendix B — the monitoring pipeline itself: a pilot-window run
//! (Figure 5 / QR persistence inputs) and the Twitch null-result sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use gt_bench::bench_world;
use gt_core::fig5::keyword_contribution;
use gt_sim::SimDuration;
use gt_stream::keywords::search_keyword_set;
use gt_stream::monitor::{Monitor, MonitorConfig};
use gt_stream::pilot::{qr_persistence, qr_stats};
use gt_stream::twitch::run_twitch_pilot;
use std::hint::black_box;

fn bench_monitor(c: &mut Criterion) {
    let world = bench_world();
    let keywords = search_keyword_set();

    // One full pilot run, reported.
    let monitor = Monitor::new(
        MonitorConfig::paper(world.config.pilot_start, world.config.pilot_end),
        search_keyword_set(),
    );
    let report = monitor.run(&world.youtube, &world.web);
    let stats = qr_stats(&qr_persistence(&report, SimDuration::seconds(450)));
    let fig5 = keyword_contribution(&report, &keywords);
    println!(
        "pilot (scale {}): {} streams, {} leads, qr stats {:?}, fig5 keyword rate {:.2}",
        gt_bench::BENCH_SCALE,
        report.streams.len(),
        report.leads.len(),
        stats,
        fig5.keyword_rate()
    );

    // A one-day monitoring slice as the repeatable benchmark unit.
    c.bench_function("monitor/youtube_one_day", |b| {
        b.iter(|| {
            let m = Monitor::new(
                MonitorConfig::paper(
                    world.config.pilot_start,
                    world.config.pilot_start + SimDuration::days(1),
                ),
                search_keyword_set(),
            );
            black_box(m.run(&world.youtube, &world.web))
        })
    });

    c.bench_function("monitor/twitch_pilot_one_day", |b| {
        b.iter(|| {
            black_box(run_twitch_pilot(
                &world.twitch,
                world.config.pilot_start,
                world.config.pilot_start + SimDuration::days(1),
            ))
        })
    });

    c.bench_function("monitor/fig5_keyword_contribution", |b| {
        b.iter(|| black_box(keyword_contribution(&report, &keywords)))
    });
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
