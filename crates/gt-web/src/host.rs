//! The simulated web: domains, cloaking scam sites, benign sites.

use crate::url::Url;
use gt_sim::faults::{CheckedCall, FaultKind, Substrate};
use gt_sim::SimTime;
use gt_store::{StoreDecode, StoreEncode};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Where a request originates from, as servers can observe it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub enum NetOrigin {
    /// University / corporate address space (what an unprotected
    /// measurement crawler looks like).
    Institutional,
    /// Residential address space (what a VPN exit gives the crawler and
    /// what real victims look like).
    Residential,
    /// Hosting provider address space.
    Datacenter,
}

/// Which cloaking behaviours a scam site deploys (Section 3.2).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub struct CloakingProfile {
    /// 403 to institutional/datacenter IPs.
    pub ip_cloaking: bool,
    /// 403 unless the UA looks like a Windows/Mac browser.
    pub ua_cloaking: bool,
    /// Landing page behind an interactive front page (pick a coin /
    /// press a button).
    pub front_page: bool,
    /// Cloudflare-style bot challenge unless the client is a verified
    /// bot or passes the challenge.
    pub cloudflare: bool,
}

/// An HTTP-ish request as the simulated server sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub url: Url,
    pub origin: NetOrigin,
    pub user_agent: String,
    /// Set when the client has completed the site's front-page
    /// interaction (the heuristic click-through module).
    pub interacted: bool,
    /// Set when the client is registered as a verified bot with the
    /// anti-bot provider (or executed the challenge).
    pub solves_challenge: bool,
}

/// An HTTP-ish response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: String,
}

impl Response {
    pub fn ok(body: String) -> Response {
        Response { status: 200, body }
    }

    pub fn forbidden() -> Response {
        Response {
            status: 403,
            body: "<html><body><h1>403 Forbidden</h1></body></html>".into(),
        }
    }

    /// Whether the body is an interactive front page.
    pub fn is_front_page(&self) -> bool {
        self.body.contains(FRONT_PAGE_MARKER)
    }

    /// Whether the body is an anti-bot challenge interstitial.
    pub fn is_challenge(&self) -> bool {
        self.body.contains(CHALLENGE_MARKER)
    }
}

/// Marker attribute the click-through heuristic looks for.
pub const FRONT_PAGE_MARKER: &str = "data-action=\"continue\"";
/// Marker the challenge page carries.
pub const CHALLENGE_MARKER: &str = "id=\"anti-bot-challenge\"";

/// Why a fetch failed at the network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// No such domain (never registered, or NXDOMAIN after takedown).
    UnknownDomain,
    /// Domain exists but the server no longer responds.
    ConnectionFailed,
    /// Resolver failure (injected fault; distinct from NXDOMAIN).
    DnsFailure,
    /// TLS handshake failed.
    TlsHandshake,
    /// The request timed out.
    Timeout,
    /// The client is being rate-limited.
    RateLimited,
}

impl FetchError {
    /// Whether a retry at a later tick could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FetchError::DnsFailure
                | FetchError::TlsHandshake
                | FetchError::Timeout
                | FetchError::RateLimited
        )
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::UnknownDomain => write!(f, "unknown domain"),
            FetchError::ConnectionFailed => write!(f, "connection failed"),
            FetchError::DnsFailure => write!(f, "dns failure"),
            FetchError::TlsHandshake => write!(f, "tls handshake failed"),
            FetchError::Timeout => write!(f, "timed out"),
            FetchError::RateLimited => write!(f, "rate limited"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Specification of a hosted scam site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct ScamSiteSpec {
    pub domain: String,
    /// The landing-page HTML (contains addresses and scam keywords).
    pub landing_html: String,
    /// Front-page HTML shown when `cloaking.front_page` and the client
    /// has not interacted.
    pub front_html: String,
    pub cloaking: CloakingProfile,
    /// When the site came online.
    pub online_from: SimTime,
    /// When the site stopped responding (takedown/abandonment), if ever.
    pub offline_from: Option<SimTime>,
}

impl ScamSiteSpec {
    fn serve(&self, req: &Request) -> Response {
        let c = self.cloaking;
        if c.ip_cloaking && req.origin != NetOrigin::Residential {
            return Response::forbidden();
        }
        if c.ua_cloaking && !ua_looks_mainstream(&req.user_agent) {
            return Response::forbidden();
        }
        if c.cloudflare && !req.solves_challenge {
            return Response::ok(format!(
                "<html><body><div {CHALLENGE_MARKER}>Checking your browser…</div></body></html>"
            ));
        }
        if c.front_page && !req.interacted {
            return Response::ok(self.front_html.clone());
        }
        Response::ok(self.landing_html.clone())
    }
}

fn ua_looks_mainstream(ua: &str) -> bool {
    let ua = ua.to_ascii_lowercase();
    ua.contains("windows nt") || ua.contains("macintosh")
}

/// A benign site (background web).
#[derive(Debug, Clone, PartialEq, Eq, StoreEncode, StoreDecode)]
pub struct BenignSiteSpec {
    pub domain: String,
    pub html: String,
}

#[derive(Debug, StoreEncode, StoreDecode)]
enum Site {
    Scam(ScamSiteSpec),
    Benign(BenignSiteSpec),
}

/// Fetch statistics for tests and the crawl report.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, StoreEncode, StoreDecode)]
pub struct HostStats {
    pub fetches: u64,
    pub forbidden: u64,
    pub challenges: u64,
    pub errors: u64,
}

/// The registry of all hosted sites.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct WebHost {
    sites: HashMap<String, Site>,
    stats: Mutex<HostStats>,
}

impl WebHost {
    pub fn new() -> Self {
        WebHost::default()
    }

    pub fn add_scam_site(&mut self, spec: ScamSiteSpec) {
        self.sites.insert(spec.domain.clone(), Site::Scam(spec));
    }

    pub fn add_benign_site(&mut self, spec: BenignSiteSpec) {
        self.sites.insert(spec.domain.clone(), Site::Benign(spec));
    }

    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Ground-truth access to a scam site's spec.
    pub fn scam_site(&self, domain: &str) -> Option<&ScamSiteSpec> {
        match self.sites.get(domain) {
            Some(Site::Scam(s)) => Some(s),
            _ => None,
        }
    }

    pub fn stats(&self) -> HostStats {
        *self.stats.lock()
    }

    /// Serve a request at virtual time `now`.
    pub fn fetch(&self, req: &Request, now: SimTime) -> Result<Response, FetchError> {
        let mut stats = self.stats.lock();
        stats.fetches += 1;
        let site = self.sites.get(&req.url.host).ok_or_else(|| {
            stats.errors += 1;
            FetchError::UnknownDomain
        })?;
        let response = match site {
            Site::Benign(b) => Response::ok(b.html.clone()),
            Site::Scam(s) => {
                if now < s.online_from || s.offline_from.is_some_and(|t| now >= t) {
                    stats.errors += 1;
                    return Err(FetchError::ConnectionFailed);
                }
                s.serve(req)
            }
        };
        if response.status == 403 {
            stats.forbidden += 1;
        }
        if response.is_challenge() {
            stats.challenges += 1;
        }
        Ok(response)
    }

    /// Serve a request at `now`, consulting `gate`'s fault plan first.
    ///
    /// Network-layer faults surface as the extended [`FetchError`]
    /// variants: DNS and TLS windows fail the whole fetch, while
    /// fetch-layer windows are retried inside the gate's budget and
    /// only surface once the budget or schedule says so. A served
    /// response always carries data as of `now` (snapshot semantics).
    /// An observing gate additionally records per-substrate call counts
    /// and served body bytes.
    pub fn fetch_gated<G: CheckedCall>(
        &self,
        req: &Request,
        now: SimTime,
        gate: &mut G,
    ) -> Result<Response, FetchError> {
        if gate.pass_through() {
            return self.fetch(req, now);
        }
        for (sub, err) in [
            (Substrate::WebDns, FetchError::DnsFailure),
            (Substrate::WebTls, FetchError::TlsHandshake),
        ] {
            if gate.checked(sub, now, || ()).is_err() {
                self.stats.lock().errors += 1;
                return Err(err);
            }
        }
        let fetched = gate.checked_counted(Substrate::WebFetch, now, || {
            let result = self.fetch(req, now);
            let bytes = result.as_ref().map(|r| r.body.len() as u64).unwrap_or(0);
            (result, bytes)
        });
        match fetched {
            Ok(result) => result,
            Err(_denied) => {
                let err = match gate.active_fault(Substrate::WebFetch, now) {
                    Some(FaultKind::RateLimit) => FetchError::RateLimited,
                    Some(FaultKind::Outage) => FetchError::ConnectionFailed,
                    _ => FetchError::Timeout,
                };
                self.stats.lock().errors += 1;
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> SimTime {
        SimTime(1_690_156_800 + s)
    }

    fn scam_spec(cloaking: CloakingProfile) -> ScamSiteSpec {
        ScamSiteSpec {
            domain: "xrp-2x.live".into(),
            landing_html: "<html><body>Hurry! Send XRP to \
                           rHb9CJAWyB4rj91VRWn96DkukG4bwdtyTh to participate</body></html>"
                .into(),
            front_html: format!(
                "<html><body><button {FRONT_PAGE_MARKER}>Select your crypto</button></body></html>"
            ),
            cloaking,
            online_from: t(0),
            offline_from: None,
        }
    }

    fn residential_browser(url: &str) -> Request {
        Request {
            url: Url::parse(url).unwrap(),
            origin: NetOrigin::Residential,
            user_agent: "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Chrome/114".into(),
            interacted: false,
            solves_challenge: false,
        }
    }

    #[test]
    fn plain_site_serves_landing_page() {
        let mut host = WebHost::new();
        host.add_scam_site(scam_spec(CloakingProfile::default()));
        let resp = host
            .fetch(&residential_browser("https://xrp-2x.live/"), t(100))
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("rHb9CJAWyB4rj91VRWn96DkukG4bwdtyTh"));
    }

    #[test]
    fn ip_cloaking_blocks_institutional() {
        let mut host = WebHost::new();
        host.add_scam_site(scam_spec(CloakingProfile {
            ip_cloaking: true,
            ..Default::default()
        }));
        let mut req = residential_browser("https://xrp-2x.live/");
        req.origin = NetOrigin::Institutional;
        assert_eq!(host.fetch(&req, t(1)).unwrap().status, 403);
        req.origin = NetOrigin::Residential;
        assert_eq!(host.fetch(&req, t(1)).unwrap().status, 200);
    }

    #[test]
    fn ua_cloaking_blocks_non_mainstream() {
        let mut host = WebHost::new();
        host.add_scam_site(scam_spec(CloakingProfile {
            ua_cloaking: true,
            ..Default::default()
        }));
        let mut req = residential_browser("https://xrp-2x.live/");
        req.user_agent = "python-requests/2.31 (Linux x86_64)".into();
        assert_eq!(host.fetch(&req, t(1)).unwrap().status, 403);
        req.user_agent = "Mozilla/5.0 (Macintosh; Intel Mac OS X) Safari".into();
        assert_eq!(host.fetch(&req, t(1)).unwrap().status, 200);
    }

    #[test]
    fn front_page_requires_interaction() {
        let mut host = WebHost::new();
        host.add_scam_site(scam_spec(CloakingProfile {
            front_page: true,
            ..Default::default()
        }));
        let mut req = residential_browser("https://xrp-2x.live/");
        let resp = host.fetch(&req, t(1)).unwrap();
        assert!(resp.is_front_page());
        assert!(!resp.body.contains("rHb9CJAW"), "address not on front page");
        req.interacted = true;
        let resp = host.fetch(&req, t(1)).unwrap();
        assert!(!resp.is_front_page());
        assert!(resp.body.contains("rHb9CJAW"));
    }

    #[test]
    fn cloudflare_challenge_until_verified() {
        let mut host = WebHost::new();
        host.add_scam_site(scam_spec(CloakingProfile {
            cloudflare: true,
            ..Default::default()
        }));
        let mut req = residential_browser("https://xrp-2x.live/");
        assert!(host.fetch(&req, t(1)).unwrap().is_challenge());
        req.solves_challenge = true;
        assert!(!host.fetch(&req, t(1)).unwrap().is_challenge());
    }

    #[test]
    fn all_cloaking_layers_stack() {
        let mut host = WebHost::new();
        host.add_scam_site(scam_spec(CloakingProfile {
            ip_cloaking: true,
            ua_cloaking: true,
            front_page: true,
            cloudflare: true,
        }));
        let mut req = residential_browser("https://xrp-2x.live/");
        req.interacted = true;
        req.solves_challenge = true;
        let resp = host.fetch(&req, t(1)).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("rHb9CJAW"));
    }

    #[test]
    fn offline_sites_fail_to_connect() {
        let mut host = WebHost::new();
        let mut spec = scam_spec(CloakingProfile::default());
        spec.offline_from = Some(t(1000));
        host.add_scam_site(spec);
        let req = residential_browser("https://xrp-2x.live/");
        assert!(host.fetch(&req, t(100)).is_ok());
        assert_eq!(host.fetch(&req, t(1000)), Err(FetchError::ConnectionFailed));
        // Before the site came online it also fails.
        assert_eq!(host.fetch(&req, t(-10)), Err(FetchError::ConnectionFailed));
    }

    #[test]
    fn unknown_domain() {
        let host = WebHost::new();
        let req = residential_browser("https://nosuch.site/");
        assert_eq!(host.fetch(&req, t(0)), Err(FetchError::UnknownDomain));
    }

    #[test]
    fn stats_accumulate() {
        let mut host = WebHost::new();
        host.add_scam_site(scam_spec(CloakingProfile {
            ip_cloaking: true,
            ..Default::default()
        }));
        let mut req = residential_browser("https://xrp-2x.live/");
        req.origin = NetOrigin::Institutional;
        let _ = host.fetch(&req, t(1));
        let _ = host.fetch(&residential_browser("https://gone.com/"), t(1));
        let stats = host.stats();
        assert_eq!(stats.fetches, 2);
        assert_eq!(stats.forbidden, 1);
        assert_eq!(stats.errors, 1);
    }
}
