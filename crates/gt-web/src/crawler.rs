//! The hardened crawler and its revisit policy.

use crate::host::{FetchError, NetOrigin, Request, Response, WebHost};
use crate::url::Url;
use gt_sim::faults::{CheckedCall, FaultDriver};
use gt_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Crawler hardening configuration — each flag counters one cloaking
/// behaviour from the paper's pilot study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlerConfig {
    /// Egress via VPN (residential IP) instead of the institutional
    /// network.
    pub use_vpn: bool,
    /// Spoof a mainstream Windows browser User-Agent.
    pub spoof_user_agent: bool,
    /// Heuristically click through interactive front pages.
    pub clickthrough: bool,
    /// Registered as a verified bot with the anti-bot provider.
    pub cloudflare_verified: bool,
    /// Maximum front-page interactions before giving up.
    pub max_interactions: u32,
}

impl Default for CrawlerConfig {
    /// The fully hardened configuration the paper deployed.
    fn default() -> Self {
        CrawlerConfig {
            use_vpn: true,
            spoof_user_agent: true,
            clickthrough: true,
            cloudflare_verified: true,
            max_interactions: 3,
        }
    }
}

impl CrawlerConfig {
    /// A naive crawler with no counter-measures (ablation baseline).
    pub fn naive() -> Self {
        CrawlerConfig {
            use_vpn: false,
            spoof_user_agent: false,
            clickthrough: false,
            cloudflare_verified: false,
            max_interactions: 0,
        }
    }
}

/// The result of crawling one URL once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlOutcome {
    /// Reached a final content page.
    Page { html: String },
    /// Server said 403 (cloaked away).
    Forbidden,
    /// Stuck at an anti-bot challenge.
    Challenged,
    /// Stuck at a front page (click-through disabled or exhausted).
    StuckAtFrontPage,
    /// Network-level failure.
    Error(FetchError),
}

impl CrawlOutcome {
    pub fn html(&self) -> Option<&str> {
        match self {
            CrawlOutcome::Page { html } => Some(html),
            _ => None,
        }
    }

    /// Whether this outcome counts as a fetch error for the 3-day
    /// retirement rule (paper: "fetching the URL resulted in an error").
    pub fn is_error(&self) -> bool {
        matches!(self, CrawlOutcome::Error(_))
    }
}

/// The hardened crawler.
#[derive(Debug, Clone)]
pub struct Crawler {
    config: CrawlerConfig,
}

const SPOOFED_UA: &str =
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 Chrome/114.0 Safari/537.36";
const HONEST_UA: &str = "gt-crawler/0.1 (research; Linux x86_64)";

impl Crawler {
    pub fn new(config: CrawlerConfig) -> Self {
        Crawler { config }
    }

    pub fn config(&self) -> CrawlerConfig {
        self.config
    }

    fn request(&self, url: &Url, interacted: bool) -> Request {
        Request {
            url: url.clone(),
            origin: if self.config.use_vpn {
                NetOrigin::Residential
            } else {
                NetOrigin::Institutional
            },
            user_agent: if self.config.spoof_user_agent {
                SPOOFED_UA.to_string()
            } else {
                HONEST_UA.to_string()
            },
            interacted,
            solves_challenge: self.config.cloudflare_verified,
        }
    }

    /// Crawl one URL at `now`, following front pages up to the
    /// configured interaction budget.
    pub fn crawl(&self, host: &WebHost, url: &Url, now: SimTime) -> CrawlOutcome {
        self.crawl_gated(host, url, now, &mut FaultDriver::disabled())
    }

    /// [`Crawler::crawl`] under a checked-call gate: every fetch
    /// consults the gate's `FaultPlan`, with transient failures retried
    /// inside the gate's `RetryPolicy` budget, and an observing gate
    /// records per-fetch telemetry. With a pass-through gate this is
    /// byte-for-byte identical to `crawl`.
    pub fn crawl_gated<G: CheckedCall>(
        &self,
        host: &WebHost,
        url: &Url,
        now: SimTime,
        gate: &mut G,
    ) -> CrawlOutcome {
        let mut interacted = false;
        let mut interactions = 0u32;
        loop {
            let response: Response =
                match host.fetch_gated(&self.request(url, interacted), now, gate) {
                    Ok(r) => r,
                    Err(e) => return CrawlOutcome::Error(e),
                };
            if response.status == 403 {
                return CrawlOutcome::Forbidden;
            }
            if response.is_challenge() {
                return CrawlOutcome::Challenged;
            }
            if response.is_front_page() {
                if !self.config.clickthrough || interactions >= self.config.max_interactions {
                    return CrawlOutcome::StuckAtFrontPage;
                }
                interactions += 1;
                interacted = true;
                continue;
            }
            return CrawlOutcome::Page {
                html: response.body,
            };
        }
    }

    /// Crawl a batch of URLs in parallel with a worker pool.
    pub fn crawl_many(
        &self,
        host: &WebHost,
        urls: &[Url],
        now: SimTime,
        workers: usize,
    ) -> Vec<CrawlOutcome> {
        assert!(workers >= 1);
        let results: Vec<parking_lot::Mutex<Option<CrawlOutcome>>> =
            urls.iter().map(|_| parking_lot::Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers.min(urls.len().max(1)) {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= urls.len() {
                        break;
                    }
                    let outcome = self.crawl(host, &urls[i], now);
                    *results[i].lock() = Some(outcome);
                });
            }
        })
        .expect("crawler worker panicked");
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every url crawled"))
            .collect()
    }
}

/// State of one URL under the daily revisit policy: crawl every day
/// until the collection window ends or three consecutive error days.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevisitState {
    pub url: Url,
    pub consecutive_errors: u32,
    pub retired: bool,
    /// Day number of the last visit.
    pub last_visited_day: Option<i64>,
}

/// Errors-in-a-row threshold after which a URL is retired.
pub const RETIRE_AFTER_ERRORS: u32 = 3;

impl RevisitState {
    pub fn new(url: Url) -> Self {
        RevisitState {
            url,
            consecutive_errors: 0,
            retired: false,
            last_visited_day: None,
        }
    }

    /// Whether the URL is due for a crawl at `now` (once per UTC day).
    pub fn due(&self, now: SimTime) -> bool {
        !self.retired && self.last_visited_day != Some(now.day_number())
    }

    /// Record the outcome of a crawl at `now`.
    pub fn record(&mut self, outcome: &CrawlOutcome, now: SimTime) {
        self.last_visited_day = Some(now.day_number());
        if outcome.is_error() {
            self.consecutive_errors += 1;
            if self.consecutive_errors >= RETIRE_AFTER_ERRORS {
                self.retired = true;
            }
        } else {
            self.consecutive_errors = 0;
        }
    }
}

/// Convenience: run the daily revisit loop over a window for a set of
/// URLs, invoking `on_page` for every successful page fetch.
pub fn run_revisit_loop<F>(
    crawler: &Crawler,
    host: &WebHost,
    urls: Vec<Url>,
    window_start: SimTime,
    window_end: SimTime,
    mut on_page: F,
) -> Vec<RevisitState>
where
    F: FnMut(&Url, &str, SimTime),
{
    let mut states: Vec<RevisitState> = urls.into_iter().map(RevisitState::new).collect();
    let mut now = window_start;
    while now < window_end {
        for state in &mut states {
            if !state.due(now) {
                continue;
            }
            let outcome = crawler.crawl(host, &state.url, now);
            if let Some(html) = outcome.html() {
                on_page(&state.url, html, now);
            }
            state.record(&outcome, now);
        }
        now += SimDuration::days(1);
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{CloakingProfile, ScamSiteSpec, FRONT_PAGE_MARKER};

    fn t(s: i64) -> SimTime {
        SimTime(1_690_156_800 + s)
    }

    fn host_with(cloaking: CloakingProfile, offline_from: Option<SimTime>) -> WebHost {
        let mut host = WebHost::new();
        host.add_scam_site(ScamSiteSpec {
            domain: "btc-2x.fund".into(),
            landing_html: "<html>Send BTC to 1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa now! hurry</html>"
                .into(),
            front_html: format!("<html><button {FRONT_PAGE_MARKER}>BTC</button></html>"),
            cloaking,
            online_from: t(0),
            offline_from,
        });
        host
    }

    fn url() -> Url {
        Url::parse("https://btc-2x.fund/").unwrap()
    }

    #[test]
    fn hardened_crawler_defeats_all_cloaking() {
        let host = host_with(
            CloakingProfile {
                ip_cloaking: true,
                ua_cloaking: true,
                front_page: true,
                cloudflare: true,
            },
            None,
        );
        let crawler = Crawler::new(CrawlerConfig::default());
        let outcome = crawler.crawl(&host, &url(), t(10));
        let html = outcome.html().expect("hardened crawler reaches the page");
        assert!(html.contains("1A1zP1eP5QGe"));
    }

    #[test]
    fn naive_crawler_cloaked_away() {
        let host = host_with(
            CloakingProfile {
                ip_cloaking: true,
                ..Default::default()
            },
            None,
        );
        let crawler = Crawler::new(CrawlerConfig::naive());
        assert_eq!(crawler.crawl(&host, &url(), t(10)), CrawlOutcome::Forbidden);
    }

    #[test]
    fn no_clickthrough_sticks_at_front_page() {
        let host = host_with(
            CloakingProfile {
                front_page: true,
                ..Default::default()
            },
            None,
        );
        let config = CrawlerConfig {
            clickthrough: false,
            ..Default::default()
        };
        let crawler = Crawler::new(config);
        assert_eq!(
            crawler.crawl(&host, &url(), t(10)),
            CrawlOutcome::StuckAtFrontPage
        );
    }

    #[test]
    fn unverified_crawler_stuck_at_challenge() {
        let host = host_with(
            CloakingProfile {
                cloudflare: true,
                ..Default::default()
            },
            None,
        );
        let config = CrawlerConfig {
            cloudflare_verified: false,
            ..Default::default()
        };
        let crawler = Crawler::new(config);
        assert_eq!(
            crawler.crawl(&host, &url(), t(10)),
            CrawlOutcome::Challenged
        );
    }

    #[test]
    fn crawl_many_parallel_matches_serial() {
        let host = host_with(CloakingProfile::default(), None);
        let crawler = Crawler::new(CrawlerConfig::default());
        let urls: Vec<Url> = (0..20)
            .map(|i| {
                if i % 3 == 0 {
                    Url::parse("https://btc-2x.fund/").unwrap()
                } else {
                    Url::parse(&format!("https://missing{i}.com/")).unwrap()
                }
            })
            .collect();
        let parallel = crawler.crawl_many(&host, &urls, t(5), 4);
        let serial: Vec<CrawlOutcome> =
            urls.iter().map(|u| crawler.crawl(&host, u, t(5))).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn revisit_retires_after_three_error_days() {
        // Site goes offline after day 2; states should retire on day 5.
        let host = host_with(CloakingProfile::default(), Some(t(2 * 86_400)));
        let crawler = Crawler::new(CrawlerConfig::default());
        let mut pages = 0;
        let states = run_revisit_loop(
            &crawler,
            &host,
            vec![url()],
            t(0),
            t(10 * 86_400),
            |_, _, _| pages += 1,
        );
        assert_eq!(pages, 2, "two successful daily crawls");
        assert!(states[0].retired);
        assert_eq!(states[0].consecutive_errors, RETIRE_AFTER_ERRORS);
        // Retired after day 4 (errors on days 2,3,4): last visit day 4.
        assert_eq!(states[0].last_visited_day, Some(t(4 * 86_400).day_number()));
    }

    #[test]
    fn transient_errors_reset_the_counter() {
        let mut state = RevisitState::new(url());
        let day = |d: i64| t(d * 86_400);
        state.record(&CrawlOutcome::Error(FetchError::ConnectionFailed), day(0));
        state.record(&CrawlOutcome::Error(FetchError::ConnectionFailed), day(1));
        state.record(&CrawlOutcome::Page { html: "x".into() }, day(2));
        assert_eq!(state.consecutive_errors, 0);
        assert!(!state.retired);
    }

    #[test]
    fn any_success_resets_the_counter() {
        // Regression pin for the retirement rule: only fetch *errors*
        // count toward retirement, so every non-error outcome —
        // Forbidden, Challenged, StuckAtFrontPage, Page — resets the
        // consecutive-error counter (the paper retires a URL only after
        // three uninterrupted error days).
        let day = |d: i64| t(d * 86_400);
        for success in [
            CrawlOutcome::Page { html: "x".into() },
            CrawlOutcome::Forbidden,
            CrawlOutcome::Challenged,
            CrawlOutcome::StuckAtFrontPage,
        ] {
            let mut state = RevisitState::new(url());
            state.record(&CrawlOutcome::Error(FetchError::ConnectionFailed), day(0));
            state.record(&CrawlOutcome::Error(FetchError::Timeout), day(1));
            assert_eq!(state.consecutive_errors, 2);
            state.record(&success, day(2));
            assert_eq!(state.consecutive_errors, 0, "{success:?} must reset");
            assert!(!state.retired);
            // Two more error days must not retire: the streak restarted.
            state.record(&CrawlOutcome::Error(FetchError::ConnectionFailed), day(3));
            state.record(&CrawlOutcome::Error(FetchError::ConnectionFailed), day(4));
            assert!(!state.retired);
        }
    }

    #[test]
    fn checked_crawl_with_disabled_gate_matches_plain() {
        let host = host_with(CloakingProfile::default(), None);
        let crawler = Crawler::new(CrawlerConfig::default());
        let mut gate = FaultDriver::disabled();
        assert_eq!(
            crawler.crawl_gated(&host, &url(), t(10), &mut gate),
            crawler.crawl(&host, &url(), t(10))
        );
        assert!(gate.stats().is_zero());
    }

    #[test]
    fn checked_crawl_surfaces_injected_faults() {
        use gt_sim::faults::{FaultKind, FaultPlan, FaultWindow, RetryPolicy, Substrate};

        let host = host_with(CloakingProfile::default(), None);
        let crawler = Crawler::new(CrawlerConfig::default());
        let mut plan = FaultPlan::quiet(5);
        plan.schedules.insert(
            Substrate::WebDns,
            vec![FaultWindow {
                start: t(0),
                end: t(50),
                kind: FaultKind::Outage,
            }],
        );
        let mut gate = FaultDriver::new(Some(&plan), "test", RetryPolicy::default());
        assert_eq!(
            crawler.crawl_gated(&host, &url(), t(10), &mut gate),
            CrawlOutcome::Error(FetchError::DnsFailure)
        );
        assert!(FetchError::DnsFailure.is_transient());
        assert_eq!(gate.stats().lost, 1);
        // Outside the window the crawl recovers.
        assert!(crawler
            .crawl_gated(&host, &url(), t(60), &mut gate)
            .html()
            .is_some());
    }

    #[test]
    fn due_once_per_day() {
        let mut state = RevisitState::new(url());
        assert!(state.due(t(0)));
        state.record(&CrawlOutcome::Page { html: "x".into() }, t(0));
        assert!(!state.due(t(3600)), "same UTC day");
        assert!(state.due(t(86_400 + 1)), "next day");
    }
}
