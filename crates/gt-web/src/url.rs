//! A small, strict URL type for the crawler.

use gt_store::{StoreDecode, StoreEncode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed http(s) URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct Url {
    pub https: bool,
    /// Lowercased host.
    pub host: String,
    pub port: Option<u16>,
    /// Always starts with '/'.
    pub path: String,
    pub query: Option<String>,
}

impl Url {
    /// Parse an absolute http(s) URL.
    pub fn parse(s: &str) -> Option<Url> {
        let (https, rest) = if let Some(r) = strip_prefix_ci(s, "https://") {
            (true, r)
        } else if let Some(r) = strip_prefix_ci(s, "http://") {
            (false, r)
        } else {
            return None;
        };
        let (authority, path_query) = match rest.find(['/', '?', '#']) {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, ""),
        };
        if authority.is_empty() {
            return None;
        }
        let (host_raw, port) = match authority.rsplit_once(':') {
            Some((h, p)) if p.bytes().all(|b| b.is_ascii_digit()) && !p.is_empty() => {
                (h, Some(p.parse::<u16>().ok()?))
            }
            _ => (authority, None),
        };
        let host = host_raw.to_ascii_lowercase();
        if host.is_empty() || !host.contains('.') {
            return None;
        }
        // Strip the fragment; split query.
        let path_query = path_query.split('#').next().unwrap_or("");
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p, Some(q.to_string())),
            None => (path_query, None),
        };
        let path = if path.is_empty() {
            "/".to_string()
        } else {
            path.to_string()
        };
        Some(Url {
            https,
            host,
            port,
            path,
            query,
        })
    }

    /// This URL with a different query string.
    pub fn with_query(&self, query: &str) -> Url {
        let mut u = self.clone();
        u.query = Some(query.to_string());
        u
    }

    /// This URL with a different path.
    pub fn with_path(&self, path: &str) -> Url {
        let mut u = self.clone();
        u.path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        u
    }
}

fn strip_prefix_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    if s.len() >= prefix.len() && s[..prefix.len()].eq_ignore_ascii_case(prefix) {
        Some(&s[prefix.len()..])
    } else {
        None
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://", if self.https { "https" } else { "http" })?;
        f.write_str(&self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typical_scam_urls() {
        let u = Url::parse("https://musk-2x.com/claim?id=7#top").unwrap();
        assert!(u.https);
        assert_eq!(u.host, "musk-2x.com");
        assert_eq!(u.path, "/claim");
        assert_eq!(u.query.as_deref(), Some("id=7"));
        assert_eq!(u.port, None);
    }

    #[test]
    fn default_path_is_root() {
        let u = Url::parse("https://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.to_string(), "https://example.com/");
    }

    #[test]
    fn host_is_lowercased_scheme_case_insensitive() {
        let u = Url::parse("HTTPS://ELON-Gives.COM/Path").unwrap();
        assert_eq!(u.host, "elon-gives.com");
        assert_eq!(u.path, "/Path");
    }

    #[test]
    fn ports_parse() {
        let u = Url::parse("http://site.io:8080/x").unwrap();
        assert!(!u.https);
        assert_eq!(u.port, Some(8080));
        assert_eq!(u.to_string(), "http://site.io:8080/x");
    }

    #[test]
    fn rejects_non_http_and_garbage() {
        assert!(Url::parse("ftp://example.com").is_none());
        assert!(Url::parse("example.com").is_none());
        assert!(Url::parse("https://").is_none());
        assert!(Url::parse("https://nohost").is_none());
    }

    #[test]
    fn query_only_urls() {
        let u = Url::parse("https://a.io?x=1").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.query.as_deref(), Some("x=1"));
    }

    #[test]
    fn builders() {
        let u = Url::parse("https://a.io/start").unwrap();
        assert_eq!(
            u.with_query("step=claim").to_string(),
            "https://a.io/start?step=claim"
        );
        assert_eq!(u.with_path("btc").to_string(), "https://a.io/btc");
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "https://a.io/",
            "http://b.org/p?q=1",
            "https://c.net:444/deep/path",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }
}
