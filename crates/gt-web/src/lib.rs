//! Simulated web hosting and the hardened crawler.
//!
//! Section 3.2 of the paper identifies four cloaking behaviours on scam
//! landing pages and the counter-measure for each:
//!
//! | cloaking                    | counter-measure                    |
//! |-----------------------------|------------------------------------|
//! | IP-based (403 to inst. IPs) | VPN egress (residential IP)        |
//! | user-agent based            | spoofed Windows/Mac browser UA     |
//! | interactive front pages     | heuristic click-through module     |
//! | Cloudflare anti-bot         | verified-bot registration          |
//!
//! [`host::WebHost`] serves generated scam (and benign) sites with any
//! combination of those behaviours; [`crawler::Crawler`] implements the
//! hardened client. The crawler also owns the paper's revisit policy:
//! crawl daily until the collection window ends or fetching fails three
//! days in a row.

pub mod crawler;
pub mod host;
pub mod url;

pub use crawler::{CrawlOutcome, Crawler, CrawlerConfig};
pub use host::{CloakingProfile, FetchError, NetOrigin, Response, ScamSiteSpec, WebHost};
pub use url::Url;
