//! The Twitch pilot (Appendix B.1).
//!
//! Twitch's API lists *all* live streams, so filtering is client-side:
//! a stream is a candidate if its title or tags match the keyword set
//! (minus the 16 over-generic terms) and its category is not a game.
//! Candidates are recorded for 20 seconds (to outlast the ~15-second ad
//! roll) every 30 minutes and their chat is polled while live. The
//! paper found no giveaway scams this way; the report quantifies the
//! same null result.

use crate::keywords::twitch_keyword_set;
use gt_obs::StageSink;
use gt_qr::scan_frame;
use gt_sim::faults::{DegradationStats, FaultPlan, Gated, RetryPolicy};
use gt_sim::{SimDuration, SimTime};
use gt_social::{Twitch, TwitchStreamId};
use gt_store::{StoreDecode, StoreEncode};
use gt_text::{extract_urls, KeywordSet};
use std::collections::{HashMap, HashSet};

/// Categories treated as games (dropped from candidates).
const GAME_CATEGORIES: &[&str] = &[
    "Fortnite",
    "League of Legends",
    "Minecraft",
    "Grand Theft Auto V",
    "Valorant",
    "Counter-Strike",
];

/// Output of the pilot run.
#[derive(Debug, Default, StoreEncode, StoreDecode)]
pub struct TwitchPilotReport {
    /// Streams seen across all list polls.
    pub streams_listed: usize,
    /// Streams passing the keyword filter (before category drop).
    pub keyword_matches: usize,
    /// Candidates after dropping game categories.
    pub candidates: usize,
    /// Candidates actually recorded.
    pub recorded: usize,
    /// QR codes decoded from recordings (scams found).
    pub qr_hits: usize,
    /// URLs extracted from candidate chats.
    pub chat_urls: Vec<String>,
    /// Injected-fault accounting (all zero when run clean).
    pub degradation: DegradationStats,
}

/// Run the Twitch pilot over a window at a 30-minute cadence.
pub fn run_twitch_pilot(
    twitch: &Twitch,
    window_start: SimTime,
    window_end: SimTime,
) -> TwitchPilotReport {
    run_twitch_pilot_with_faults(
        twitch,
        window_start,
        window_end,
        None,
        RetryPolicy::default(),
    )
}

/// [`run_twitch_pilot`] under a fault plan: list polls and per-stream
/// taps (recording, chat) consult the plan; denied polls are lost.
pub fn run_twitch_pilot_with_faults(
    twitch: &Twitch,
    window_start: SimTime,
    window_end: SimTime,
    fault_plan: Option<&FaultPlan>,
    retry: RetryPolicy,
) -> TwitchPilotReport {
    run_twitch_pilot_observed(
        twitch,
        window_start,
        window_end,
        fault_plan,
        retry,
        StageSink::noop(),
    )
}

/// [`run_twitch_pilot_with_faults`] reporting per-call telemetry
/// (Helix list polls, recording taps, chat polls) into `sink`.
pub fn run_twitch_pilot_observed(
    twitch: &Twitch,
    window_start: SimTime,
    window_end: SimTime,
    fault_plan: Option<&FaultPlan>,
    retry: RetryPolicy,
    sink: StageSink,
) -> TwitchPilotReport {
    let keywords: KeywordSet = twitch_keyword_set();
    let mut report = TwitchPilotReport::default();
    let mut seen: HashSet<TwitchStreamId> = HashSet::new();
    let mut chat_cursor: HashMap<TwitchStreamId, SimTime> = HashMap::new();
    let mut gate = Gated::new(fault_plan, "twitch.pilot", retry, sink.clone());
    let _window_span = sink.span_sim("twitch.window", window_start.0);

    let mut t = window_start;
    while t < window_end {
        let listed = twitch.get_streams_gated(t, &mut gate).unwrap_or_default();
        for stream in listed {
            let is_new = seen.insert(stream.id);
            if is_new {
                report.streams_listed += 1;
            }
            let matches = keywords.matches(&stream.title)
                || stream.tags.iter().any(|tag| keywords.matches(tag));
            if !matches {
                continue;
            }
            if is_new {
                report.keyword_matches += 1;
            }
            if GAME_CATEGORIES.contains(&stream.category.as_str()) {
                continue;
            }
            if is_new {
                report.candidates += 1;
            }

            // Record 20 seconds (ads occupy the first ~15).
            let frames = twitch
                .record_gated(stream.id, t, SimDuration::seconds(20), &mut gate)
                .unwrap_or_default();
            if !frames.is_empty() {
                report.recorded += 1;
            }
            for frame in &frames {
                report.qr_hits += scan_frame(frame).len();
            }

            // Chat: poll the interval since the last visit (Twitch has
            // no history endpoint).
            let since = chat_cursor.get(&stream.id).copied().unwrap_or(stream.start);
            // On a denied chat poll the cursor stays put, so the next
            // successful poll recovers the missed interval while the
            // stream is still live.
            if let Ok(messages) = twitch.chat_since_gated(stream.id, since, t, &mut gate) {
                for msg in messages {
                    for url in extract_urls(&msg.text) {
                        report.chat_urls.push(url.url);
                    }
                }
                chat_cursor.insert(stream.id, t);
            }
        }
        t += SimDuration::minutes(30);
    }
    report.chat_urls.sort();
    report.chat_urls.dedup();
    report.degradation = gate.stats();
    drop(gate); // flush per-call telemetry before the summary rows
    for (metric, value) in [
        ("streams_listed", report.streams_listed as u64),
        ("candidates", report.candidates as u64),
        ("recorded", report.recorded as u64),
        ("qr_hits", report.qr_hits as u64),
        ("chat_urls", report.chat_urls.len() as u64),
    ] {
        sink.counter_add("twitch.pilot", metric, value);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_social::{ChatMessage, StreamVideo, TwitchStream, ViewerCurve};

    fn t0() -> SimTime {
        SimTime::from_ymd(2023, 7, 1)
    }

    fn stream(title: &str, category: &str, video: StreamVideo) -> TwitchStream {
        TwitchStream {
            id: TwitchStreamId(0),
            channel_name: "c".into(),
            title: title.into(),
            tags: vec![],
            category: category.into(),
            start: t0(),
            end: t0() + SimDuration::hours(3),
            video,
            viewers: ViewerCurve {
                peak_concurrent: 10,
                total_views: 100,
            },
            chat: vec![],
        }
    }

    #[test]
    fn filters_by_keyword_and_category() {
        let mut tw = Twitch::new();
        tw.add_stream(stream(
            "bitcoin talk live",
            "Just Chatting",
            StreamVideo::Benign,
        ));
        tw.add_stream(stream("bitcoin speedrun", "Fortnite", StreamVideo::Benign));
        tw.add_stream(stream(
            "cooking pasta",
            "Just Chatting",
            StreamVideo::Benign,
        ));
        let report = run_twitch_pilot(&tw, t0(), t0() + SimDuration::hours(1));
        assert_eq!(report.streams_listed, 3);
        assert_eq!(report.keyword_matches, 2);
        assert_eq!(report.candidates, 1, "game category dropped");
        assert_eq!(report.qr_hits, 0, "no scams on Twitch");
    }

    #[test]
    fn twenty_second_recording_outlasts_the_ad() {
        // A (hypothetical) scam stream on Twitch would be caught because
        // the 20-second recording reaches past the 15-second ad.
        let mut tw = Twitch::new();
        tw.add_stream(stream(
            "bitcoin giveaway event live",
            "Crypto",
            StreamVideo::ScamLoop {
                qr_url: "https://btc-x2.fund".into(),
                qr_duty_cycle: None,
                qr_scale: 2,
            },
        ));
        let report = run_twitch_pilot(&tw, t0(), t0() + SimDuration::hours(1));
        assert_eq!(report.candidates, 1);
        assert!(report.qr_hits > 0, "QR visible after the ad roll");
    }

    #[test]
    fn chat_urls_collected_while_live() {
        let mut tw = Twitch::new();
        let mut s = stream("xrp chat", "Just Chatting", StreamVideo::Benign);
        s.chat = vec![ChatMessage {
            time: t0() + SimDuration::minutes(40),
            author: "viewer".into(),
            text: "my charts: https://charts.example-site.com".into(),
        }];
        tw.add_stream(s);
        let report = run_twitch_pilot(&tw, t0(), t0() + SimDuration::hours(2));
        assert_eq!(report.chat_urls, ["https://charts.example-site.com"]);
    }

    #[test]
    fn empty_platform_gives_null_report() {
        let tw = Twitch::new();
        let report = run_twitch_pilot(&tw, t0(), t0() + SimDuration::hours(2));
        assert_eq!(report.streams_listed, 0);
        assert_eq!(report.candidates, 0);
    }
}
