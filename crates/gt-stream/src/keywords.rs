//! The search and validation keyword corpus (Table 3).

use gt_text::KeywordSet;

/// Coin names and ticker symbols of the top-20 coins (coinmarketcap,
/// July 2023), with "coin" appended to ambiguous tickers as the paper
/// did for ADA/SOL/DOT.
pub const COIN_KEYWORDS: &[&str] = &[
    "bitcoin",
    "btc",
    "ethereum",
    "eth",
    "tether",
    "usdt",
    "ripple",
    "xrp",
    "bnb",
    "usd coin",
    "usdc",
    "cardano",
    "ada coin",
    "dogecoin",
    "doge",
    "solana",
    "sol coin",
    "tron",
    "trx",
    "litecoin",
    "ltc",
    "polkadot",
    "dot coin",
    "polygon",
    "matic",
    "wrapped bitcoin",
    "wbtc",
    "bitcoin cash",
    "bch",
    "toncoin",
    "ton",
    "dai",
    "avalanche",
    "avax",
    "shiba inu",
    "shib",
    "binance usd",
    "busd",
    "algorand",
    "algo",
    "hex",
    "cryptocurrency",
    "crypto",
];

/// Domain keywords from CryptoScamTracker (Table 3, middle row).
pub const DOMAIN_KEYWORDS: &[&str] = &[
    "kf",
    "event",
    "musk",
    "elon",
    "give",
    "coin",
    "shiba",
    "drop",
    "double",
    "get",
    "doge",
    "kefu",
    "vitalik",
    "claim",
    "binance",
    "hoskinson",
    "free",
    "charles",
    "star",
    "garling",
];

/// HTML keywords the landing-page validator looks for (Table 3, bottom
/// row).
pub const HTML_KEYWORDS: &[&str] = &[
    "giveaway",
    "participate",
    "send",
    "address",
    "rules",
    "crypto",
    "bonus",
    "immediately",
    "hurry",
];

/// The 16 keywords too generic for Twitch title/tag filtering
/// (Appendix B.1 removes them).
pub const TWITCH_EXCLUDED_KEYWORDS: &[&str] = &[
    "event", "give", "get", "free", "star", "claim", "drop", "double", "kf", "kefu", "charles",
    "coin", "hex", "ton", "dai", "sol coin",
];

/// The assembled search keyword corpus.
pub struct SearchKeywords {
    /// The full search set: coins + domain keywords.
    pub search: KeywordSet,
    /// Top-20 coin names/tickers only (Section 4.3 coin tagging).
    pub coins: KeywordSet,
    /// HTML validation keywords.
    pub html: KeywordSet,
    /// Domain-name validation keywords.
    pub domain: KeywordSet,
    /// The flat search keyword list (for Figure 5 attribution).
    pub search_terms: Vec<String>,
}

/// Build the full corpus.
pub fn search_keyword_set() -> SearchKeywords {
    let mut search_terms: Vec<String> = COIN_KEYWORDS.iter().map(|s| s.to_string()).collect();
    for kw in DOMAIN_KEYWORDS {
        if !search_terms.iter().any(|s| s == kw) {
            search_terms.push(kw.to_string());
        }
    }
    SearchKeywords {
        search: KeywordSet::new(search_terms.clone()),
        coins: KeywordSet::new(COIN_KEYWORDS.iter().copied()),
        html: KeywordSet::new(HTML_KEYWORDS.iter().copied()),
        domain: KeywordSet::new(DOMAIN_KEYWORDS.iter().copied()),
        search_terms,
    }
}

/// The Twitch-filter keyword set (search minus the 16 noisy terms).
pub fn twitch_keyword_set() -> KeywordSet {
    let kws = search_keyword_set();
    let filtered: Vec<String> = kws
        .search_terms
        .into_iter()
        .filter(|k| !TWITCH_EXCLUDED_KEYWORDS.contains(&k.as_str()))
        .collect();
    KeywordSet::new(filtered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_table_3_shape() {
        let kws = search_keyword_set();
        assert!(kws.coins.len() >= 40, "top-20 coins with tickers");
        assert_eq!(kws.html.len(), 9);
        assert_eq!(kws.domain.len(), 20);
        // No duplicates in the merged search set.
        let mut sorted = kws.search_terms.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), kws.search_terms.len());
    }

    #[test]
    fn search_matches_scam_stream_titles() {
        let kws = search_keyword_set();
        for title in [
            "Elon Musk LIVE: 5000 BTC giveaway",
            "Brad Garlinghouse announces XRP event",
            "double your ethereum today",
            "Charles Hoskinson ADA coin drop",
        ] {
            assert!(kws.search.matches(title), "{title}");
        }
        assert!(!kws.search.matches("cooking pasta with grandma"));
    }

    #[test]
    fn html_keywords_match_landing_pages() {
        let kws = search_keyword_set();
        let html = "To participate, send crypto immediately. Hurry!";
        assert!(kws.html.matches(html));
    }

    #[test]
    fn twitch_set_drops_generic_terms() {
        let tw = twitch_keyword_set();
        assert!(!tw.matches("free giveaway event"), "generic words removed");
        assert!(tw.matches("bitcoin ranked grind"), "coins stay");
        assert!(tw.matches("elon watching the stream"), "musk terms stay");
    }

    #[test]
    fn ambiguous_tickers_need_the_coin_suffix() {
        let kws = search_keyword_set();
        assert!(!kws.search.matches("playing a dot eating game"));
        assert!(kws.search.matches("dot coin holders unite"));
        assert!(!kws.search.matches("sol means sun in spanish"));
        assert!(kws.search.matches("sol coin analysis"));
    }
}
