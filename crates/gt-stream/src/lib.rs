//! The livestream measurement pipeline (Section 3.2 and Appendix B).
//!
//! * [`keywords`] — the Table 3 search/validation keyword corpus;
//! * [`monitor`] — the YouTube monitoring loop: keyword search every 30
//!   minutes, stream/chat/viewer sampling every 7.5 minutes, two-second
//!   video recordings, QR and chat URL lead extraction, daily crawl
//!   revisits, and the 11 infrastructure outage days;
//! * [`twitch`] — the Twitch pilot: fetch all streams, filter by
//!   keywords minus the 16 noisy ones, drop game categories, record 20
//!   seconds (to outlast the ad roll), keep chat while live;
//! * [`pilot`] — QR-persistence tracking for flagged streams (how long
//!   a code stays on screen once first seen).

pub mod keywords;
pub mod monitor;
pub mod pilot;
pub mod twitch;

pub use keywords::{search_keyword_set, SearchKeywords};
pub use monitor::{
    run_monitors, Monitor, MonitorConfig, MonitorReport, ObservedStream, UrlLead, UrlSource,
};
pub use twitch::{run_twitch_pilot, TwitchPilotReport};
