//! The YouTube monitoring pipeline.
//!
//! Faithful to Section 3.2: the search API is polled every 30 minutes
//! for streams matching the keyword corpus; every discovered stream is
//! then sampled every 7.5 minutes — stream metadata (concurrent/total
//! viewers), the last 70 chat messages, and a two-second video
//! recording whose frames are scanned for QR codes. URLs from chats and
//! QR payloads become *leads*; each lead is crawled daily (with the
//! hardened crawler) until the window ends or fetching errors three
//! days in a row. Eleven infrastructure outage days suspend all
//! polling.

use crate::keywords::SearchKeywords;
use gt_obs::StageSink;
use gt_qr::scan_frame;
use gt_sim::faults::{CheckedCall, DegradationStats, FaultPlan, Gated, RetryPolicy, Substrate};
use gt_sim::{CivilDate, SimDuration, SimTime};
use gt_social::{ChannelId, LiveStreamId, YouTube};
use gt_store::{StoreDecode, StoreEncode};
use gt_text::extract_urls;
use gt_web::crawler::{Crawler, CrawlerConfig, RevisitState};
use gt_web::{Url, WebHost};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The paper's 11 infrastructure outage days.
pub const OUTAGE_DAYS: [CivilDate; 11] = [
    CivilDate::new(2023, 8, 15),
    CivilDate::new(2023, 8, 16),
    CivilDate::new(2023, 9, 1),
    CivilDate::new(2023, 9, 28),
    CivilDate::new(2023, 10, 6),
    CivilDate::new(2023, 11, 18),
    CivilDate::new(2023, 11, 19),
    CivilDate::new(2023, 12, 12),
    CivilDate::new(2023, 12, 26),
    CivilDate::new(2024, 1, 6),
    CivilDate::new(2024, 1, 21),
];

/// Monitoring parameters (defaults are the paper's cadences).
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    pub window_start: SimTime,
    pub window_end: SimTime,
    /// Search-poll cadence (paper: 30 minutes).
    pub search_interval: SimDuration,
    /// Stream/chat/video sampling cadence (paper: 7.5 minutes).
    pub sample_interval: SimDuration,
    /// Video recording length per sample (paper: 2 seconds).
    pub record_seconds: i64,
    /// Days on which nothing is polled or crawled.
    pub outage_days: Vec<CivilDate>,
    /// Crawl leads daily (can be disabled for monitor-only runs).
    pub crawl: bool,
    pub crawler: CrawlerConfig,
    /// Fault schedule every poll consults; `None` runs clean.
    pub fault_plan: Option<FaultPlan>,
    /// Retry/backoff policy used when the plan injects faults.
    pub retry: RetryPolicy,
    /// Telemetry sink the window reports into (no-op by default).
    pub sink: StageSink,
}

impl MonitorConfig {
    /// The paper's configuration over a given window.
    pub fn paper(window_start: SimTime, window_end: SimTime) -> Self {
        MonitorConfig {
            window_start,
            window_end,
            search_interval: SimDuration::minutes(30),
            sample_interval: SimDuration::seconds(450),
            record_seconds: 2,
            outage_days: OUTAGE_DAYS.to_vec(),
            crawl: true,
            crawler: CrawlerConfig::default(),
            fault_plan: None,
            retry: RetryPolicy::default(),
            sink: StageSink::noop(),
        }
    }
}

/// Where a URL lead came from.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, StoreEncode, StoreDecode,
)]
pub enum UrlSource {
    QrCode,
    Chat,
}

/// A URL extracted from a monitored stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct UrlLead {
    pub url: String,
    pub source: UrlSource,
    pub stream: LiveStreamId,
    pub first_seen: SimTime,
}

/// Everything the monitor learned about one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct ObservedStream {
    pub stream: LiveStreamId,
    pub channel: ChannelId,
    pub title: String,
    pub description: String,
    pub channel_name: String,
    pub channel_subscribers: u64,
    pub first_seen: SimTime,
    pub last_seen: SimTime,
    pub max_concurrent: u64,
    pub max_total_views: u64,
    /// Distinct chat messages observed across polls.
    pub chat_messages_seen: usize,
    /// Video samples taken.
    pub samples: usize,
    /// Samples in which a QR code was decoded.
    pub qr_samples: usize,
    /// First/last sample time at which a QR was decoded.
    pub qr_first_seen: Option<SimTime>,
    pub qr_last_seen: Option<SimTime>,
}

/// The final crawled content for a lead URL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, StoreEncode, StoreDecode)]
pub struct CrawledPage {
    pub url: String,
    pub html: String,
    pub fetched: SimTime,
}

/// The monitoring run's full output.
#[derive(Debug, Default, PartialEq, StoreEncode, StoreDecode)]
pub struct MonitorReport {
    pub streams: Vec<ObservedStream>,
    pub leads: Vec<UrlLead>,
    /// Latest successfully crawled page per URL.
    pub pages: HashMap<String, CrawledPage>,
    pub searches_run: u64,
    pub samples_run: u64,
    pub outage_ticks_skipped: u64,
    pub crawl_attempts: u64,
    /// Injected-fault accounting for this window (all zero when clean).
    pub degradation: DegradationStats,
    /// Set when a monitor-host outage cut the window short at this tick.
    pub cut_short: Option<SimTime>,
}

impl MonitorReport {
    /// Distinct lead hosts.
    pub fn lead_domains(&self) -> HashSet<String> {
        self.leads
            .iter()
            .filter_map(|l| Url::parse(&l.url).map(|u| u.host))
            .collect()
    }
}

struct Tracked {
    observed: ObservedStream,
    chat_seen: HashSet<(SimTime, String)>,
    live: bool,
}

/// The monitor itself.
pub struct Monitor {
    config: MonitorConfig,
    keywords: SearchKeywords,
}

impl Monitor {
    pub fn new(config: MonitorConfig, keywords: SearchKeywords) -> Self {
        Monitor { config, keywords }
    }

    fn is_outage(&self, t: SimTime) -> bool {
        let d = t.date();
        self.config.outage_days.contains(&d)
    }

    /// Run the monitoring loop against the platform and (optionally)
    /// crawl leads against the web host.
    pub fn run(&self, youtube: &YouTube, web: &WebHost) -> MonitorReport {
        let cfg = &self.config;
        let mut report = MonitorReport::default();
        let mut tracked: HashMap<LiveStreamId, Tracked> = HashMap::new();
        let mut lead_seen: HashSet<(String, LiveStreamId, UrlSource)> = HashSet::new();
        let mut revisits: Vec<RevisitState> = Vec::new();
        let mut known_urls: HashSet<String> = HashSet::new();
        let crawler = Crawler::new(cfg.crawler);
        // One gate per window; the label ties this window's jitter
        // stream to its start so pilot and main draw independently.
        let gate_label = format!("monitor@{}", cfg.window_start.0);
        let mut gate = Gated::new(
            cfg.fault_plan.as_ref(),
            &gate_label,
            cfg.retry,
            cfg.sink.clone(),
        );
        let _window_span = cfg.sink.span_sim("monitor.window", cfg.window_start.0);

        let mut t = cfg.window_start;
        let ticks_per_search =
            (cfg.search_interval.as_seconds() / cfg.sample_interval.as_seconds()).max(1);
        let mut tick: i64 = 0;

        while t < cfg.window_end {
            if self.is_outage(t) {
                report.outage_ticks_skipped += 1;
                tick += 1;
                t += cfg.sample_interval;
                continue;
            }

            // ---- monitor-host outage: the window is cut short ----
            if !gate.pass_through() && gate.checked(Substrate::StreamMonitor, t, || ()).is_err() {
                report.cut_short = Some(t);
                break;
            }

            // ---- search poll ----
            if tick % ticks_per_search == 0 {
                let hits = match youtube.search_live_gated(&self.keywords.search, t, &mut gate) {
                    Ok(hits) => {
                        report.searches_run += 1;
                        hits
                    }
                    Err(_) => Vec::new(),
                };
                for hit in hits {
                    tracked.entry(hit.stream).or_insert_with(|| {
                        let s = youtube.stream(hit.stream);
                        let channel = youtube
                            .channel_details(s.channel)
                            .expect("search hit has a channel");
                        Tracked {
                            observed: ObservedStream {
                                stream: hit.stream,
                                channel: s.channel,
                                title: s.title.clone(),
                                description: s.description.clone(),
                                channel_name: channel.name,
                                channel_subscribers: channel.subscribers,
                                first_seen: t,
                                last_seen: t,
                                max_concurrent: 0,
                                max_total_views: 0,
                                chat_messages_seen: 0,
                                samples: 0,
                                qr_samples: 0,
                                qr_first_seen: None,
                                qr_last_seen: None,
                            },
                            chat_seen: HashSet::new(),
                            live: true,
                        }
                    });
                }
            }

            // ---- per-stream sampling ----
            for state in tracked.values_mut().filter(|s| s.live) {
                let id = state.observed.stream;
                // A denied details poll loses this sample but leaves the
                // stream tracked; only a served "not live" retires it.
                let Ok(details) = youtube.stream_details_gated(id, t, &mut gate) else {
                    continue;
                };
                let Some((concurrent, total)) = details else {
                    state.live = false;
                    continue;
                };
                report.samples_run += 1;
                let obs = &mut state.observed;
                obs.last_seen = t;
                obs.max_concurrent = obs.max_concurrent.max(concurrent);
                obs.max_total_views = obs.max_total_views.max(total);
                obs.samples += 1;

                // Chat poll: last 70 messages; count only new ones and
                // extract URLs. A denied poll just misses this batch.
                for msg in youtube
                    .chat_history_gated(id, t, &mut gate)
                    .unwrap_or_default()
                {
                    if state.chat_seen.insert((msg.time, msg.text.clone())) {
                        obs.chat_messages_seen += 1;
                        for url in extract_urls(&msg.text) {
                            if lead_seen.insert((url.url.clone(), id, UrlSource::Chat)) {
                                report.leads.push(UrlLead {
                                    url: url.url.clone(),
                                    source: UrlSource::Chat,
                                    stream: id,
                                    first_seen: t,
                                });
                            }
                            if known_urls.insert(url.url.clone()) {
                                if let Some(parsed) = Url::parse(&url.url) {
                                    revisits.push(RevisitState::new(parsed));
                                }
                            }
                        }
                    }
                }

                // Video recording: scan the sampled frames for QR codes.
                let frames = youtube
                    .record_gated(id, t, SimDuration::seconds(cfg.record_seconds), &mut gate)
                    .unwrap_or_default();
                let mut saw_qr = false;
                for frame in &frames {
                    for hit in scan_frame(frame) {
                        saw_qr = true;
                        if let Ok(text) = String::from_utf8(hit.payload.clone()) {
                            for url in extract_urls(&text) {
                                if lead_seen.insert((url.url.clone(), id, UrlSource::QrCode)) {
                                    report.leads.push(UrlLead {
                                        url: url.url.clone(),
                                        source: UrlSource::QrCode,
                                        stream: id,
                                        first_seen: t,
                                    });
                                }
                                if known_urls.insert(url.url.clone()) {
                                    if let Some(parsed) = Url::parse(&url.url) {
                                        revisits.push(RevisitState::new(parsed));
                                    }
                                }
                            }
                        }
                    }
                    if saw_qr {
                        break; // both frames show the same overlay
                    }
                }
                if saw_qr {
                    obs.qr_samples += 1;
                    if obs.qr_first_seen.is_none() {
                        obs.qr_first_seen = Some(t);
                    }
                    obs.qr_last_seen = Some(t);
                }
            }

            // ---- daily crawl: each lead is visited at most once per
            // UTC day (`RevisitState::due`), starting the day it is
            // discovered ----
            if cfg.crawl {
                for state in revisits.iter_mut() {
                    if !state.due(t) {
                        continue;
                    }
                    report.crawl_attempts += 1;
                    let outcome = crawler.crawl_gated(web, &state.url, t, &mut gate);
                    if let Some(html) = outcome.html() {
                        report.pages.insert(
                            state.url.to_string(),
                            CrawledPage {
                                url: state.url.to_string(),
                                html: html.to_string(),
                                fetched: t,
                            },
                        );
                    }
                    state.record(&outcome, t);
                }
            }

            tick += 1;
            t += cfg.sample_interval;
        }

        report.streams = tracked.into_values().map(|s| s.observed).collect();
        report.streams.sort_by_key(|s| s.stream);
        report.leads.sort_by_key(|l| (l.stream, l.first_seen));
        report.degradation = gate.stats();
        drop(gate); // flush per-call telemetry before the summary rows
        for (metric, value) in [
            ("searches_run", report.searches_run),
            ("samples_run", report.samples_run),
            ("outage_ticks_skipped", report.outage_ticks_skipped),
            ("crawl_attempts", report.crawl_attempts),
            ("streams_tracked", report.streams.len() as u64),
            ("leads", report.leads.len() as u64),
        ] {
            cfg.sink.counter_add("stream.monitor", metric, value);
        }
        report
    }
}

/// Run several monitoring windows (e.g. the pilot study and the main
/// measurement) concurrently, one scoped thread per monitor.
///
/// [`Monitor::run`] only reads the platform and web host (`&self`
/// everywhere), so the windows cannot interfere; each report is exactly
/// what a standalone [`Monitor::run`] would have produced, returned in
/// input order.
pub fn run_monitors(monitors: &[Monitor], youtube: &YouTube, web: &WebHost) -> Vec<MonitorReport> {
    if monitors.len() <= 1 {
        return monitors.iter().map(|m| m.run(youtube, web)).collect();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = monitors
            .iter()
            .map(|m| scope.spawn(move |_| m.run(youtube, web)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("monitor thread panicked"))
            .collect()
    })
    .expect("monitor thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::search_keyword_set;
    use gt_social::{ChatMessage, LiveStream, StreamVideo, ViewerCurve};

    fn t0() -> SimTime {
        SimTime::from_ymd(2023, 7, 24)
    }

    fn scam_platform() -> (YouTube, WebHost) {
        let mut yt = YouTube::new();
        let ch = yt.add_channel("Crypto Daily".into(), 20_000);
        yt.add_stream(LiveStream {
            id: LiveStreamId(0),
            channel: ch,
            title: "Elon Musk 5000 BTC giveaway LIVE".into(),
            description: "scan and participate".into(),
            language: "en".into(),
            fuzzy_topics: vec![],
            start: t0() + SimDuration::hours(1),
            end: t0() + SimDuration::hours(3),
            video: StreamVideo::ScamLoop {
                qr_url: "https://btc-x2.fund/claim".into(),
                qr_duty_cycle: None,
                qr_scale: 2,
            },
            viewers: ViewerCurve {
                peak_concurrent: 500,
                total_views: 9_000,
            },
            chat: vec![ChatMessage {
                time: t0() + SimDuration::hours(1) + SimDuration::minutes(5),
                author: "mod".into(),
                text: "join at https://btc-x2.fund/claim".into(),
            }],
        });
        let mut web = WebHost::new();
        web.add_scam_site(gt_web::ScamSiteSpec {
            domain: "btc-x2.fund".into(),
            landing_html:
                "<html>Hurry! Send BTC to 1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa to participate</html>"
                    .into(),
            front_html: String::new(),
            cloaking: Default::default(),
            online_from: t0(),
            offline_from: None,
        });
        (yt, web)
    }

    fn short_config(hours: i64) -> MonitorConfig {
        let mut c = MonitorConfig::paper(t0(), t0() + SimDuration::hours(hours));
        c.outage_days = vec![];
        c
    }

    #[test]
    fn finds_stream_and_extracts_both_lead_kinds() {
        let (yt, web) = scam_platform();
        let monitor = Monitor::new(short_config(5), search_keyword_set());
        let report = monitor.run(&yt, &web);

        assert_eq!(report.streams.len(), 1);
        let obs = &report.streams[0];
        assert!(obs.samples > 5);
        assert!(obs.qr_samples > 0);
        assert_eq!(obs.channel_subscribers, 20_000);
        assert!(obs.max_total_views > 0);
        assert_eq!(obs.chat_messages_seen, 1);

        let sources: HashSet<UrlSource> = report.leads.iter().map(|l| l.source).collect();
        assert!(sources.contains(&UrlSource::QrCode), "QR lead found");
        assert!(sources.contains(&UrlSource::Chat), "chat lead found");
        assert!(report.lead_domains().contains("btc-x2.fund"));
    }

    #[test]
    fn crawls_discovered_leads() {
        let (yt, web) = scam_platform();
        let monitor = Monitor::new(short_config(6), search_keyword_set());
        let report = monitor.run(&yt, &web);
        let page = report
            .pages
            .get("https://btc-x2.fund/claim")
            .expect("lead crawled");
        assert!(page.html.contains("1A1zP1eP5QGe"));
        assert!(report.crawl_attempts >= 1);
    }

    #[test]
    fn respects_outage_days() {
        let (yt, web) = scam_platform();
        let mut config = short_config(5);
        config.outage_days = vec![CivilDate::new(2023, 7, 24)];
        let monitor = Monitor::new(config, search_keyword_set());
        let report = monitor.run(&yt, &web);
        assert!(report.streams.is_empty(), "outage day: nothing observed");
        assert_eq!(report.searches_run, 0);
        assert!(report.outage_ticks_skipped > 0);
    }

    #[test]
    fn benign_streams_without_keywords_are_not_found() {
        let mut yt = YouTube::new();
        let ch = yt.add_channel("cooking channel".into(), 500);
        yt.add_stream(LiveStream {
            id: LiveStreamId(0),
            channel: ch,
            title: "pasta night live".into(),
            description: "dinner stream".into(),
            language: "en".into(),
            fuzzy_topics: vec![],
            start: t0(),
            end: t0() + SimDuration::hours(2),
            video: StreamVideo::Benign,
            viewers: ViewerCurve {
                peak_concurrent: 50,
                total_views: 300,
            },
            chat: vec![],
        });
        let web = WebHost::new();
        let monitor = Monitor::new(short_config(3), search_keyword_set());
        let report = monitor.run(&yt, &web);
        assert!(report.streams.is_empty());
        assert!(report.searches_run > 0);
    }

    #[test]
    fn qr_persistence_is_tracked() {
        let (yt, web) = scam_platform();
        let monitor = Monitor::new(short_config(5), search_keyword_set());
        let report = monitor.run(&yt, &web);
        let obs = &report.streams[0];
        let first = obs.qr_first_seen.expect("qr seen");
        let last = obs.qr_last_seen.unwrap();
        // Visible through (most of) the stream's remaining life.
        assert!((last - first).as_seconds() >= 3_600, "{}", last - first);
        assert_eq!(obs.qr_samples, obs.samples, "continuously visible");
    }

    #[test]
    fn concurrent_windows_match_serial_runs() {
        let (yt, web) = scam_platform();
        let pilot = Monitor::new(short_config(3), search_keyword_set());
        let main = Monitor::new(short_config(6), search_keyword_set());

        let serial = vec![pilot.run(&yt, &web), main.run(&yt, &web)];
        let concurrent = run_monitors(&[pilot, main], &yt, &web);
        assert_eq!(concurrent, serial);
    }

    #[test]
    fn stops_sampling_after_stream_ends() {
        let (yt, web) = scam_platform();
        let monitor = Monitor::new(short_config(24), search_keyword_set());
        let report = monitor.run(&yt, &web);
        let obs = &report.streams[0];
        // 2-hour stream sampled at 7.5-minute cadence: ≤ 17 samples.
        assert!(obs.samples <= 17, "{}", obs.samples);
        assert!(obs.last_seen < t0() + SimDuration::hours(4));
    }
}
