//! QR-persistence measurement (Appendix B).
//!
//! During the pilot the authors kept recording 41 flagged streams after
//! first detecting a QR code, to learn how long codes stay on screen —
//! the observation that justified two-second samples every 7.5 minutes.
//! This module computes the same statistics from a monitoring report.

use crate::monitor::{MonitorReport, ObservedStream};
use gt_sim::SimDuration;

/// Per-stream persistence of the QR overlay, as the pipeline saw it.
#[derive(Debug, Clone, PartialEq)]
pub struct QrPersistence {
    pub stream: gt_social::LiveStreamId,
    /// Seconds between the first and last sample showing a QR (plus one
    /// sampling interval, since visibility extends past the last
    /// sample).
    pub visible_seconds: i64,
    /// Whether every sample of the stream showed the QR (continuous).
    pub continuous: bool,
}

/// Summary statistics over the flagged streams.
#[derive(Debug, Clone, PartialEq)]
pub struct QrPilotStats {
    pub tracked: usize,
    pub mean_seconds: f64,
    pub median_seconds: f64,
    /// Streams where the QR appeared only intermittently.
    pub intermittent: usize,
}

fn persistence(obs: &ObservedStream, sample_interval: SimDuration) -> Option<QrPersistence> {
    let first = obs.qr_first_seen?;
    let last = obs.qr_last_seen?;
    let visible = (last - first).as_seconds() + sample_interval.as_seconds();
    Some(QrPersistence {
        stream: obs.stream,
        visible_seconds: visible,
        continuous: obs.qr_samples == obs.samples,
    })
}

/// Compute QR persistence for every stream in the report that showed a
/// QR at least once.
pub fn qr_persistence(report: &MonitorReport, sample_interval: SimDuration) -> Vec<QrPersistence> {
    report
        .streams
        .iter()
        .filter_map(|s| persistence(s, sample_interval))
        .collect()
}

/// Aggregate the pilot statistics.
pub fn qr_stats(persistences: &[QrPersistence]) -> Option<QrPilotStats> {
    if persistences.is_empty() {
        return None;
    }
    let mut secs: Vec<i64> = persistences.iter().map(|p| p.visible_seconds).collect();
    secs.sort_unstable();
    let mean = secs.iter().sum::<i64>() as f64 / secs.len() as f64;
    let median = if secs.len() % 2 == 1 {
        secs[secs.len() / 2] as f64
    } else {
        (secs[secs.len() / 2 - 1] + secs[secs.len() / 2]) as f64 / 2.0
    };
    Some(QrPilotStats {
        tracked: persistences.len(),
        mean_seconds: mean,
        median_seconds: median,
        intermittent: persistences.iter().filter(|p| !p.continuous).count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::ObservedStream;
    use gt_sim::SimTime;
    use gt_social::{ChannelId, LiveStreamId};

    fn obs(samples: usize, qr_samples: usize, first: i64, last: i64) -> ObservedStream {
        ObservedStream {
            stream: LiveStreamId(0),
            channel: ChannelId(0),
            title: String::new(),
            description: String::new(),
            channel_name: String::new(),
            channel_subscribers: 0,
            first_seen: SimTime(0),
            last_seen: SimTime(last),
            max_concurrent: 0,
            max_total_views: 0,
            chat_messages_seen: 0,
            samples,
            qr_samples,
            qr_first_seen: (qr_samples > 0).then_some(SimTime(first)),
            qr_last_seen: (qr_samples > 0).then_some(SimTime(last)),
        }
    }

    #[test]
    fn continuous_qr_measured_over_span() {
        let p = persistence(&obs(10, 10, 0, 4_050), SimDuration::seconds(450)).unwrap();
        assert_eq!(p.visible_seconds, 4_500);
        assert!(p.continuous);
    }

    #[test]
    fn intermittent_qr_flagged() {
        let p = persistence(&obs(10, 3, 0, 4_050), SimDuration::seconds(450)).unwrap();
        assert!(!p.continuous);
    }

    #[test]
    fn no_qr_no_persistence() {
        assert!(persistence(&obs(10, 0, 0, 0), SimDuration::seconds(450)).is_none());
    }

    #[test]
    fn stats_mean_median() {
        let ps = vec![
            QrPersistence {
                stream: LiveStreamId(0),
                visible_seconds: 1_000,
                continuous: true,
            },
            QrPersistence {
                stream: LiveStreamId(1),
                visible_seconds: 3_000,
                continuous: true,
            },
            QrPersistence {
                stream: LiveStreamId(2),
                visible_seconds: 14_000,
                continuous: false,
            },
        ];
        let stats = qr_stats(&ps).unwrap();
        assert_eq!(stats.tracked, 3);
        assert_eq!(stats.median_seconds, 3_000.0);
        assert_eq!(stats.mean_seconds, 6_000.0);
        assert_eq!(stats.intermittent, 1);
        assert!(qr_stats(&[]).is_none());
    }
}
