//! The experiment harness: regenerate every table and figure of the
//! paper and emit the paper-vs-measured report that EXPERIMENTS.md
//! records.
//!
//! ```sh
//! cargo run --release --bin experiments -- --scale 1.0 \
//!     --markdown EXPERIMENTS.md --json target/experiments.json
//! ```
//!
//! With `--store DIR` the run is checkpointed: the generated world and
//! every completed stage land in a content-addressed [`RunStore`], so a
//! killed run resumes where it stopped and a re-run with identical
//! parameters replays from cache. `--evict` prunes entries other
//! configurations left behind; `--resume` makes "continue a previous
//! run" explicit by refusing to start cold.

use givetake::core::{Pipeline, PipelineOptions, SupervisionPolicy};
use givetake::sim::faults::{ChaosProfile, FaultPlan};
use givetake::world::{World, WorldConfig};
use gt_store::RunStore;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

struct Args {
    scale: f64,
    seed: Option<u64>,
    threads: usize,
    chaos: Option<u64>,
    soak: usize,
    markdown: Option<String>,
    json: Option<String>,
    out_dir: Option<String>,
    trace: Option<String>,
    store: Option<String>,
    resume: bool,
    evict: bool,
}

const USAGE: &str = "usage: experiments [--scale F] [--seed N] [--threads N] [--chaos SEED] \
     [--soak N] [--markdown PATH] [--json PATH] [--out-dir DIR] [--trace PATH] \
     [--store DIR] [--resume] [--evict]";

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.1,
        seed: None,
        threads: 0,
        chaos: None,
        soak: 0,
        markdown: None,
        json: None,
        out_dir: None,
        trace: None,
        store: None,
        resume: false,
        evict: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                let raw = it.next().unwrap_or_default();
                args.scale = match raw.parse() {
                    Ok(v) if (0.0..=1.0).contains(&v) && v > 0.0 => v,
                    _ => {
                        eprintln!("error: --scale must be a number in (0, 1], got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                let raw = it.next().unwrap_or_default();
                args.seed = match raw.parse() {
                    Ok(v) => Some(v),
                    Err(_) => {
                        eprintln!("error: --seed must be an integer, got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                let raw = it.next().unwrap_or_default();
                args.threads = match raw.parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("error: --threads must be an integer (0 = auto), got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--chaos" => {
                let raw = it.next().unwrap_or_default();
                args.chaos = match raw.parse() {
                    Ok(v) => Some(v),
                    Err(_) => {
                        eprintln!("error: --chaos must be an integer fault seed, got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--soak" => {
                let raw = it.next().unwrap_or_default();
                args.soak = match raw.parse() {
                    Ok(v) if v > 0 => v,
                    _ => {
                        eprintln!("error: --soak must be a positive run count, got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--markdown" => args.markdown = it.next(),
            "--json" => args.json = it.next(),
            // `--artifacts` predates `--out-dir`; kept as an alias.
            "--out-dir" | "--artifacts" => args.out_dir = it.next(),
            "--trace" => args.trace = it.next(),
            "--store" => args.store = it.next(),
            "--resume" => args.resume = true,
            "--evict" => args.evict = true,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if args.store.is_none() && (args.resume || args.evict) {
        eprintln!("error: --resume and --evict require --store DIR");
        std::process::exit(2);
    }
    if args.soak > 0 && args.chaos.is_none() {
        eprintln!("error: --soak N requires --chaos SEED (the base fault seed)");
        std::process::exit(2);
    }
    args
}

/// Report a fatal IO problem and exit nonzero (the harness never
/// panics on bad paths or full disks — it says what failed and where).
fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(1);
}

/// Write an output file, creating its parent directories if missing.
fn write_output(path: &str, bytes: &[u8], what: &str) {
    let p = Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                fail(
                    &format!("create directory {} for {what}", parent.display()),
                    e,
                );
            }
        }
    }
    if let Err(e) = std::fs::write(p, bytes) {
        fail(&format!("write {what} {path}"), e);
    }
}

/// The chaos-soak harness (`--chaos SEED --soak N`): N fault seeds ×
/// three profiles (mild / severe / panicky), every run supervised with
/// `SupervisionPolicy::recover(2)`. The soak proves three things and
/// exits nonzero if any fails:
///
/// 1. **No aborts.** Every run completes — injected stage panics are
///    retried or quarantined, never propagated out of the pipeline.
/// 2. **Quarantine actually triggers.** At least one run across the
///    sweep quarantines a stage and names the degraded report tables
///    (a soak where nothing ever degrades proves nothing).
/// 3. **Supervision is free when nothing fails.** Under a quiet fault
///    plan, the supervised report and telemetry are byte-identical to
///    the unsupervised (strict) run, at 1 and at 4 worker threads.
fn run_soak(args: &Args, config: WorldConfig) -> ! {
    let base_seed = args.chaos.expect("checked in parse_args");
    eprintln!(
        "[soak] generating world (scale {}, seed {:#x}) ...",
        args.scale, config.seed
    );
    let world = World::generate(config);
    let profiles: [(&str, ChaosProfile); 3] = [
        ("mild", ChaosProfile::mild()),
        ("severe", ChaosProfile::severe()),
        ("panicky", ChaosProfile::panicky()),
    ];

    // Injected stage panics are expected by the hundreds here; keep
    // stderr readable by silencing the default hook. Aborts are still
    // detected — catch_unwind reports them — and the hook is restored
    // before the equivalence phase.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut aborts = 0usize;
    let mut quarantined_runs = 0usize;
    let mut degraded_example: Option<(u64, &str, Vec<String>)> = None;
    for i in 0..args.soak {
        let fault_seed = base_seed.wrapping_add(i as u64);
        for (name, profile) in &profiles {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Pipeline::new(&world)
                    .threads(args.threads)
                    .chaos(fault_seed, profile)
                    .supervise(SupervisionPolicy::recover(2))
                    .run()
            }));
            match outcome {
                Ok(run) => {
                    let h = &run.health;
                    eprintln!(
                        "[soak] seed {fault_seed:#x} {name:>7}: {} attempts, {} retries, \
                         {} quarantined, {} tables degraded",
                        h.attempts,
                        h.retries,
                        h.quarantined.len(),
                        h.degraded_tables.len()
                    );
                    if !h.quarantined.is_empty() {
                        quarantined_runs += 1;
                        if degraded_example.is_none() {
                            degraded_example = Some((fault_seed, name, h.degraded_tables.clone()));
                        }
                    }
                }
                Err(_) => {
                    aborts += 1;
                    eprintln!(
                        "[soak] seed {fault_seed:#x} {name:>7}: ABORTED \
                         (panic escaped supervision)"
                    );
                }
            }
        }
    }
    std::panic::set_hook(default_hook);

    eprintln!("[soak] quiet-plan equivalence: supervised vs strict at 1 and 4 threads ...");
    let quiet_run = |threads: usize, policy: SupervisionPolicy| {
        Pipeline::new(&world)
            .threads(threads)
            .fault_plan(Some(FaultPlan::quiet(base_seed)))
            .supervise(policy)
            .run()
    };
    let fingerprint = |run: &givetake::core::PaperRun| {
        let report = serde_json::to_string(&run.report).expect("report serializes");
        let metrics = serde_json::to_string(&run.telemetry.metrics).expect("metrics serialize");
        (report, metrics)
    };
    let mut mismatches = 0usize;
    for threads in [1usize, 4] {
        let strict = fingerprint(&quiet_run(threads, SupervisionPolicy::strict()));
        let supervised = fingerprint(&quiet_run(threads, SupervisionPolicy::recover(2)));
        if strict == supervised {
            eprintln!("[soak] {threads} thread(s): byte-identical");
        } else {
            mismatches += 1;
            eprintln!(
                "[soak] {threads} thread(s): MISMATCH — supervision changed a quiet run's \
                 report or telemetry"
            );
        }
    }

    let total = args.soak * profiles.len();
    eprintln!(
        "[soak] {total} runs: {} completed, {aborts} aborted; \
         {quarantined_runs} quarantined at least one stage",
        total - aborts
    );
    if let Some((fault_seed, name, tables)) = &degraded_example {
        eprintln!(
            "[soak] example degradation (seed {fault_seed:#x}, {name}): {}",
            if tables.is_empty() {
                "no report tables affected".to_string()
            } else {
                tables.join(", ")
            }
        );
    }
    let mut failed = false;
    if aborts > 0 {
        eprintln!("error: {aborts} run(s) aborted — supervision failed to contain a panic");
        failed = true;
    }
    if quarantined_runs == 0 {
        eprintln!(
            "error: no run quarantined a stage — the soak exercised nothing; \
             raise --soak or change --chaos"
        );
        failed = true;
    }
    if mismatches > 0 {
        eprintln!("error: supervised quiet runs diverged from strict quiet runs");
        failed = true;
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    let args = parse_args();
    let mut config = if (args.scale - 1.0).abs() < f64::EPSILON {
        WorldConfig::default()
    } else {
        WorldConfig::scaled(args.scale)
    };
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    if args.soak > 0 {
        run_soak(&args, config);
    }

    let store = args.store.as_ref().map(|dir| match RunStore::open(dir) {
        Ok(s) => Arc::new(s),
        Err(e) => fail(&format!("open store {dir}"), e),
    });

    let mut options = PipelineOptions::default().threads(args.threads);
    if let Some(chaos_seed) = args.chaos {
        options = options.chaos(chaos_seed, &givetake::sim::faults::ChaosProfile::default());
    }
    options = options.store(store.clone());

    let world_fpr = World::fingerprint(&config);
    let base_fpr = options.base_fingerprint(&config);
    if args.resume {
        // Explicit resume: refuse to silently start a 6-month campaign
        // from scratch because the directory or parameters are wrong.
        let store = store.as_ref().expect("checked in parse_args");
        let cached = store.stage_entry_count(&base_fpr);
        if cached == 0 && store.load_world(&world_fpr).is_none() {
            eprintln!(
                "error: --resume: no checkpoint for this configuration in {} \
                 (wrong --store dir, or --scale/--seed/--chaos changed?)",
                args.store.as_deref().unwrap_or("")
            );
            std::process::exit(1);
        }
        eprintln!("resuming: {cached} cached stage entries found");
    }

    let t0 = std::time::Instant::now();
    let snapshot = store.as_ref().and_then(|s| s.load_world(&world_fpr));
    let world = match snapshot.as_deref().and_then(World::from_snapshot) {
        Some(world) => {
            eprintln!(
                "[1/2] loaded world snapshot (scale {}, seed {:#x}, {:.1}s)",
                args.scale,
                world.config.seed,
                t0.elapsed().as_secs_f64()
            );
            world
        }
        None => {
            eprintln!(
                "[1/2] generating world (scale {}, seed {:#x}) ...",
                args.scale, config.seed
            );
            let world = World::generate(config);
            if let Some(store) = &store {
                if let Err(e) = store.store_world(&world_fpr, &world.snapshot()) {
                    // Never fatal: the run proceeds, the next one regenerates.
                    eprintln!("warning: world snapshot not saved: {e}");
                }
            }
            world
        }
    };
    eprintln!(
        "      {} tweets, {} streams, {} chain txs ({:.1}s)",
        world.twitter.len(),
        world.youtube.stream_count(),
        world.chains.total_tx_count(),
        t0.elapsed().as_secs_f64()
    );

    let t1 = std::time::Instant::now();
    eprintln!("[2/2] running the measurement pipeline ...");
    if args.chaos.is_some() {
        eprintln!(
            "      injecting faults (chaos seed {:#x})",
            args.chaos.unwrap_or_default()
        );
    }
    let run = Pipeline::new(&world).options(options).run();
    eprintln!(
        "      done ({:.1}s, {} worker threads, {} stages)",
        t1.elapsed().as_secs_f64(),
        run.timings.threads,
        run.timings.stages.len()
    );
    if run.degradation.enabled {
        let d = &run.degradation.total;
        eprintln!(
            "      degradation: {} faults injected, {} retries, {} recovered, {} lost",
            d.injected(),
            d.retries,
            d.recovered,
            d.lost
        );
    }
    if run.telemetry.enabled {
        eprintln!(
            "      telemetry: {} metric rows, {} spans ({:.1}s wall)",
            run.telemetry.metrics.len(),
            run.telemetry.wall.spans.len(),
            run.telemetry.wall.total_ms / 1_000.0
        );
    }
    if !run.health.is_clean() {
        let h = &run.health;
        eprintln!(
            "      supervision: {} attempts over {} stages, {} retries, \
             {} quarantined, {} tainted",
            h.attempts,
            h.stages.len(),
            h.retries,
            h.quarantined.len(),
            h.tainted.len()
        );
        if !h.degraded_tables.is_empty() {
            eprintln!("      degraded tables: {}", h.degraded_tables.join(", "));
        }
        for w in &h.warnings {
            eprintln!("warning: {w}");
        }
    }
    if let Some(store) = &store {
        eprintln!(
            "      store: {} stage cache hits, {} misses, {} entries on disk",
            run.telemetry.substrate_total("store", "cache_hit"),
            run.telemetry.substrate_total("store", "cache_miss"),
            store.stage_entry_count(&base_fpr),
        );
    }

    if let Some(path) = &args.trace {
        write_output(
            path,
            run.telemetry.chrome_trace_json().as_bytes(),
            "trace file",
        );
        eprintln!("wrote {path} (chrome://tracing / Perfetto format)");
    }

    let table = run.report.render_comparison(args.scale);
    println!("{table}");

    if let Some(path) = &args.json {
        let json = serde_json::json!({
            "scale": args.scale,
            "seed": world.config.seed,
            "chaos_seed": args.chaos,
            "report": run.report,
            "comparison": run.report.compare_with_paper(args.scale),
            "timings": run.timings,
            "degradation": run.degradation,
            "telemetry": run.telemetry,
            "health": run.health,
        });
        let pretty = match serde_json::to_string_pretty(&json) {
            Ok(s) => s,
            Err(e) => fail("serialize json report", e),
        };
        write_output(path, pretty.as_bytes(), "json report");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &args.markdown {
        let md = render_markdown(&args, &world, &run);
        write_output(path, md.as_bytes(), "markdown report");
        eprintln!("wrote {path}");
    }

    if let Some(dir) = &args.out_dir {
        write_artifacts(&world, dir);
    }

    if args.evict {
        let store = store.as_ref().expect("checked in parse_args");
        match store.evict(&base_fpr, &world_fpr) {
            Ok(stats) => eprintln!(
                "evicted {} stale stage groups, {} world snapshots, {} temp files",
                stats.stage_groups, stats.worlds, stats.temp_files
            ),
            Err(e) => fail("evict store entries", e),
        }
    }
}

fn render_markdown(args: &Args, world: &World, run: &givetake::core::PaperRun) -> String {
    let table = run.report.render_comparison(args.scale);
    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs measured\n");
    let _ = writeln!(
        md,
        "Generated by `cargo run --release --bin experiments -- --scale {}`\n\
         (seed `{:#x}`). Counts and revenue are compared against the paper\n\
         value multiplied by the scale factor; rates and ratios compare\n\
         directly. Exact equality is not expected — the substrate is a\n\
         calibrated simulator — the acceptance bar is direction, ratio\n\
         structure, and order of magnitude (see DESIGN.md).\n",
        args.scale, world.config.seed
    );
    let _ = writeln!(md, "```text\n{}```\n", table);
    let _ = writeln!(md, "## Weekly series\n");
    let _ = writeln!(
        md,
        "Figure 3 (scam tweets/week):  `{}`\n",
        run.report.twitter_weekly.sparkline()
    );
    let _ = writeln!(
        md,
        "Figure 4 (scam streams/week): `{}`\n",
        run.report.youtube_weekly.sparkline()
    );
    let _ = writeln!(md, "## Figure 5 — top search keywords by credit\n");
    let _ = writeln!(md, "| keyword | credit |");
    let _ = writeln!(md, "|---|---|");
    for (kw, credit) in run.report.fig5.credits.iter().take(20) {
        let _ = writeln!(md, "| {kw} | {credit:.1} |");
    }
    let _ = writeln!(
        md,
        "\n{} of {} returned streams contained a search keyword; among the\n\
         keyword-less remainder, {} of {} looked non-English.\n",
        run.report.fig5.with_keyword,
        run.report.fig5.streams,
        run.report.fig5.keywordless_non_english,
        run.report.fig5.keywordless
    );
    let _ = writeln!(
        md,
        "## Exchange block-list intervention (Section 6.2 extension)\n"
    );
    let _ = writeln!(
        md,
        "If exchanges refused transfers to a scam address N after its first\n\
         observed payment, the preventable share of victim revenue would be:\n"
    );
    let _ = writeln!(
        md,
        "| detection lag | payments blocked | USD prevented | share |"
    );
    let _ = writeln!(md, "|---|---|---|---|");
    for o in &run.report.interventions {
        let _ = writeln!(
            md,
            "| {} | {} / {} | ${:.0} | {:.1}% |",
            if o.lag_seconds == 0 {
                "instant".to_string()
            } else {
                format!("{}h", o.lag_seconds / 3600)
            },
            o.blocked,
            o.payments,
            o.prevented_usd,
            o.prevented_fraction() * 100.0
        );
    }
    let _ = writeln!(md);
    let _ = writeln!(md, "## Cash-out categories (Section 5.5)\n");
    let _ = writeln!(md, "| category | recipients |");
    let _ = writeln!(md, "|---|---|");
    for (cat, n) in &run.report.outgoing.by_category {
        let _ = writeln!(md, "| {cat} | {n} |");
    }
    let _ = writeln!(md, "| (unlabeled) | {} |", run.report.outgoing.unlabeled);

    // Multi-hop flow tracing (the Phillips & Wilder analysis the
    // paper cites as future work).
    let clustering = givetake::cluster::ClusterView::build(&world.chains.btc);
    let tags = world.tags.resolver(&clustering);
    let sources: Vec<givetake::addr::Address> = run
        .twitter_analysis
        .victim_payments()
        .chain(run.youtube_analysis.victim_payments())
        .map(|p| p.transfer.recipient)
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .collect();
    let _ = writeln!(md, "\n## Multi-hop flow tracing (future-work extension)\n");
    let _ = writeln!(
        md,
        "Exchange exposure of scam proceeds by trace depth (the paper's\n\
         direct-edge view is depth 1; \"more advanced blockchain analysis\"\n\
         follows the intermediaries):\n"
    );
    let _ = writeln!(
        md,
        "| depth | exchange share of traced value | addresses visited |"
    );
    let _ = writeln!(md, "|---|---|---|");
    for depth in [1usize, 2, 3, 4] {
        let exposure = givetake::cluster::aggregate_exposure(
            &sources,
            &world.chains,
            &tags,
            &clustering,
            depth,
        );
        let _ = writeln!(
            md,
            "| {depth} | {:.1}% | {} |",
            exposure.share(givetake::cluster::Category::Exchange) * 100.0,
            exposure.visited
        );
    }
    md
}

/// Emit the Figure 1 / Figure 2 artifacts: example landing pages and a
/// livestream video frame with its QR overlay (as a PGM image).
fn write_artifacts(world: &World, dir: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        fail(&format!("create output directory {dir}"), e);
    }

    // Figure 1: two example landing pages (Twitter-promoted domains).
    for (i, domain) in world.truth.twitter_domains.iter().take(2).enumerate() {
        let html = givetake::world::sites::landing_html(&domain.persona, &domain.addresses);
        let path = format!("{dir}/figure1_landing_{}.html", i + 1);
        write_output(&path, html.as_bytes(), "landing page");
        eprintln!("wrote {path} ({})", domain.domain);
    }

    // Figure 2: a frame of the first QR-bearing scam stream.
    for &sid in &world.truth.scam_streams {
        let stream = world.youtube.stream(sid);
        if !matches!(stream.video, givetake::social::StreamVideo::ScamLoop { .. }) {
            continue;
        }
        let frames = world.youtube.record(
            sid,
            stream.start + givetake::sim::SimDuration::minutes(5),
            givetake::sim::SimDuration::seconds(1),
        );
        if let Some(frame) = frames.first() {
            let path = format!("{dir}/figure2_stream_frame.pgm");
            let mut pgm = format!("P2\n{} {}\n255\n", frame.width, frame.height);
            for y in 0..frame.height {
                let row: Vec<String> = (0..frame.width)
                    .map(|x| frame.get(x, y).to_string())
                    .collect();
                pgm.push_str(&row.join(" "));
                pgm.push('\n');
            }
            write_output(&path, pgm.as_bytes(), "stream frame");
            eprintln!("wrote {path} ({})", stream.title);
            break;
        }
    }
}
