//! The experiment harness: regenerate every table and figure of the
//! paper and emit the paper-vs-measured report that EXPERIMENTS.md
//! records.
//!
//! ```sh
//! cargo run --release --bin experiments -- --scale 1.0 \
//!     --markdown EXPERIMENTS.md --json target/experiments.json
//! ```

use givetake::core::Pipeline;
use givetake::world::{World, WorldConfig};
use std::fmt::Write as _;

struct Args {
    scale: f64,
    seed: Option<u64>,
    threads: usize,
    chaos: Option<u64>,
    markdown: Option<String>,
    json: Option<String>,
    artifacts: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.1,
        seed: None,
        threads: 0,
        chaos: None,
        markdown: None,
        json: None,
        artifacts: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                let raw = it.next().unwrap_or_default();
                args.scale = match raw.parse() {
                    Ok(v) if (0.0..=1.0).contains(&v) && v > 0.0 => v,
                    _ => {
                        eprintln!("error: --scale must be a number in (0, 1], got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                let raw = it.next().unwrap_or_default();
                args.seed = match raw.parse() {
                    Ok(v) => Some(v),
                    Err(_) => {
                        eprintln!("error: --seed must be an integer, got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                let raw = it.next().unwrap_or_default();
                args.threads = match raw.parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("error: --threads must be an integer (0 = auto), got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--chaos" => {
                let raw = it.next().unwrap_or_default();
                args.chaos = match raw.parse() {
                    Ok(v) => Some(v),
                    Err(_) => {
                        eprintln!("error: --chaos must be an integer fault seed, got {raw:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--markdown" => args.markdown = it.next(),
            "--json" => args.json = it.next(),
            "--artifacts" => args.artifacts = it.next(),
            "--trace" => args.trace = it.next(),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: experiments [--scale F] [--seed N] [--threads N] [--chaos SEED] [--markdown PATH] [--json PATH] [--artifacts DIR] [--trace PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut config = if (args.scale - 1.0).abs() < f64::EPSILON {
        WorldConfig::default()
    } else {
        WorldConfig::scaled(args.scale)
    };
    if let Some(seed) = args.seed {
        config.seed = seed;
    }

    let t0 = std::time::Instant::now();
    eprintln!(
        "[1/2] generating world (scale {}, seed {:#x}) ...",
        args.scale, config.seed
    );
    let world = World::generate(config);
    eprintln!(
        "      {} tweets, {} streams, {} chain txs ({:.1}s)",
        world.twitter.len(),
        world.youtube.stream_count(),
        world.chains.total_tx_count(),
        t0.elapsed().as_secs_f64()
    );

    let t1 = std::time::Instant::now();
    eprintln!("[2/2] running the measurement pipeline ...");
    let mut pipeline = Pipeline::new(&world).threads(args.threads);
    if let Some(chaos_seed) = args.chaos {
        eprintln!("      injecting faults (chaos seed {chaos_seed:#x})");
        pipeline = pipeline.chaos(chaos_seed, &givetake::sim::faults::ChaosProfile::default());
    }
    let run = pipeline.run();
    eprintln!(
        "      done ({:.1}s, {} worker threads, {} stages)",
        t1.elapsed().as_secs_f64(),
        run.timings.threads,
        run.timings.stages.len()
    );
    if run.degradation.enabled {
        let d = &run.degradation.total;
        eprintln!(
            "      degradation: {} faults injected, {} retries, {} recovered, {} lost",
            d.injected(),
            d.retries,
            d.recovered,
            d.lost
        );
    }
    if run.telemetry.enabled {
        eprintln!(
            "      telemetry: {} metric rows, {} spans ({:.1}s wall)",
            run.telemetry.metrics.len(),
            run.telemetry.wall.spans.len(),
            run.telemetry.wall.total_ms / 1_000.0
        );
    }

    if let Some(path) = &args.trace {
        std::fs::write(path, run.telemetry.chrome_trace_json()).expect("write trace file");
        eprintln!("wrote {path} (chrome://tracing / Perfetto format)");
    }

    let table = run.report.render_comparison(args.scale);
    println!("{table}");

    if let Some(path) = &args.json {
        let json = serde_json::json!({
            "scale": args.scale,
            "seed": world.config.seed,
            "chaos_seed": args.chaos,
            "report": run.report,
            "comparison": run.report.compare_with_paper(args.scale),
            "timings": run.timings,
            "degradation": run.degradation,
            "telemetry": run.telemetry,
        });
        std::fs::write(path, serde_json::to_string_pretty(&json).unwrap())
            .expect("write json report");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &args.markdown {
        let mut md = String::new();
        let _ = writeln!(md, "# EXPERIMENTS — paper vs measured\n");
        let _ = writeln!(
            md,
            "Generated by `cargo run --release --bin experiments -- --scale {}`\n\
             (seed `{:#x}`). Counts and revenue are compared against the paper\n\
             value multiplied by the scale factor; rates and ratios compare\n\
             directly. Exact equality is not expected — the substrate is a\n\
             calibrated simulator — the acceptance bar is direction, ratio\n\
             structure, and order of magnitude (see DESIGN.md).\n",
            args.scale, world.config.seed
        );
        let _ = writeln!(md, "```text\n{}```\n", table);
        let _ = writeln!(md, "## Weekly series\n");
        let _ = writeln!(
            md,
            "Figure 3 (scam tweets/week):  `{}`\n",
            run.report.twitter_weekly.sparkline()
        );
        let _ = writeln!(
            md,
            "Figure 4 (scam streams/week): `{}`\n",
            run.report.youtube_weekly.sparkline()
        );
        let _ = writeln!(md, "## Figure 5 — top search keywords by credit\n");
        let _ = writeln!(md, "| keyword | credit |");
        let _ = writeln!(md, "|---|---|");
        for (kw, credit) in run.report.fig5.credits.iter().take(20) {
            let _ = writeln!(md, "| {kw} | {credit:.1} |");
        }
        let _ = writeln!(
            md,
            "\n{} of {} returned streams contained a search keyword; among the\n\
             keyword-less remainder, {} of {} looked non-English.\n",
            run.report.fig5.with_keyword,
            run.report.fig5.streams,
            run.report.fig5.keywordless_non_english,
            run.report.fig5.keywordless
        );
        let _ = writeln!(
            md,
            "## Exchange block-list intervention (Section 6.2 extension)\n"
        );
        let _ = writeln!(
            md,
            "If exchanges refused transfers to a scam address N after its first\n\
             observed payment, the preventable share of victim revenue would be:\n"
        );
        let _ = writeln!(
            md,
            "| detection lag | payments blocked | USD prevented | share |"
        );
        let _ = writeln!(md, "|---|---|---|---|");
        for o in &run.report.interventions {
            let _ = writeln!(
                md,
                "| {} | {} / {} | ${:.0} | {:.1}% |",
                if o.lag_seconds == 0 {
                    "instant".to_string()
                } else {
                    format!("{}h", o.lag_seconds / 3600)
                },
                o.blocked,
                o.payments,
                o.prevented_usd,
                o.prevented_fraction() * 100.0
            );
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "## Cash-out categories (Section 5.5)\n");
        let _ = writeln!(md, "| category | recipients |");
        let _ = writeln!(md, "|---|---|");
        for (cat, n) in &run.report.outgoing.by_category {
            let _ = writeln!(md, "| {cat} | {n} |");
        }
        let _ = writeln!(md, "| (unlabeled) | {} |", run.report.outgoing.unlabeled);

        // Multi-hop flow tracing (the Phillips & Wilder analysis the
        // paper cites as future work).
        let clustering = givetake::cluster::ClusterView::build(&world.chains.btc);
        let tags = world.tags.resolver(&clustering);
        let sources: Vec<givetake::addr::Address> = run
            .twitter_analysis
            .victim_payments()
            .chain(run.youtube_analysis.victim_payments())
            .map(|p| p.transfer.recipient)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        let _ = writeln!(md, "\n## Multi-hop flow tracing (future-work extension)\n");
        let _ = writeln!(
            md,
            "Exchange exposure of scam proceeds by trace depth (the paper's\n\
             direct-edge view is depth 1; \"more advanced blockchain analysis\"\n\
             follows the intermediaries):\n"
        );
        let _ = writeln!(
            md,
            "| depth | exchange share of traced value | addresses visited |"
        );
        let _ = writeln!(md, "|---|---|---|");
        for depth in [1usize, 2, 3, 4] {
            let exposure = givetake::cluster::aggregate_exposure(
                &sources,
                &world.chains,
                &tags,
                &clustering,
                depth,
            );
            let _ = writeln!(
                md,
                "| {depth} | {:.1}% | {} |",
                exposure.share(givetake::cluster::Category::Exchange) * 100.0,
                exposure.visited
            );
        }
        std::fs::write(path, md).expect("write markdown report");
        eprintln!("wrote {path}");
    }

    if let Some(dir) = &args.artifacts {
        write_artifacts(&world, dir);
    }
}

/// Emit the Figure 1 / Figure 2 artifacts: example landing pages and a
/// livestream video frame with its QR overlay (as a PGM image).
fn write_artifacts(world: &World, dir: &str) {
    std::fs::create_dir_all(dir).expect("create artifacts dir");

    // Figure 1: two example landing pages (Twitter-promoted domains).
    for (i, domain) in world.truth.twitter_domains.iter().take(2).enumerate() {
        let html = givetake::world::sites::landing_html(&domain.persona, &domain.addresses);
        let path = format!("{dir}/figure1_landing_{}.html", i + 1);
        std::fs::write(&path, html).expect("write landing page");
        eprintln!("wrote {path} ({})", domain.domain);
    }

    // Figure 2: a frame of the first QR-bearing scam stream.
    for &sid in &world.truth.scam_streams {
        let stream = world.youtube.stream(sid);
        if !matches!(stream.video, givetake::social::StreamVideo::ScamLoop { .. }) {
            continue;
        }
        let frames = world.youtube.record(
            sid,
            stream.start + givetake::sim::SimDuration::minutes(5),
            givetake::sim::SimDuration::seconds(1),
        );
        if let Some(frame) = frames.first() {
            let path = format!("{dir}/figure2_stream_frame.pgm");
            let mut pgm = format!("P2\n{} {}\n255\n", frame.width, frame.height);
            for y in 0..frame.height {
                let row: Vec<String> = (0..frame.width)
                    .map(|x| frame.get(x, y).to_string())
                    .collect();
                pgm.push_str(&row.join(" "));
                pgm.push('\n');
            }
            std::fs::write(&path, pgm).expect("write frame");
            eprintln!("wrote {path} ({})", stream.title);
            break;
        }
    }
}
