//! `givetake` — an end-to-end reproduction of *"Give and Take: An
//! End-To-End Investigation of Giveaway Scam Conversion Rates"*
//! (Liu et al., IMC 2024).
//!
//! The facade crate re-exports the whole workspace:
//!
//! * [`world`] — generate a calibrated synthetic world (platforms,
//!   chains, scam campaigns, victims);
//! * [`core`] — run the paper's measurement and analysis pipeline over
//!   it and compare against every published table and figure;
//! * the substrates ([`qr`], [`addr`], [`chain`], [`cluster`], [`web`],
//!   [`social`], [`stream`], [`text`], [`hash`], [`price`], [`sim`])
//!   are reusable on their own.
//!
//! # Quickstart
//!
//! ```
//! use givetake::world::{World, WorldConfig};
//! use givetake::core::Pipeline;
//!
//! // A down-scaled world keeps the doctest fast; use
//! // `WorldConfig::default()` for the paper-scale run.
//! let world = World::generate(WorldConfig::test_small());
//! let run = Pipeline::new(&world).run();
//! assert!(run.report.table1.twitter_artifacts > 0);
//! assert!(run.report.twitter_revenue.usd_co_occurring > 0.0);
//! // Stage wall times for the run (never part of the report itself):
//! assert_eq!(run.timings.stages.len(), 25);
//! ```

pub use gt_addr as addr;
pub use gt_chain as chain;
pub use gt_cluster as cluster;
pub use gt_core as core;
pub use gt_hash as hash;
pub use gt_obs as obs;
pub use gt_price as price;
pub use gt_qr as qr;
pub use gt_sim as sim;
pub use gt_social as social;
pub use gt_store as store;
pub use gt_stream as stream;
pub use gt_text as text;
pub use gt_web as web;
pub use gt_world as world;
